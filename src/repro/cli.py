"""Command-line interface.

``python -m repro <command>`` exposes the main workflows without writing any
Python:

* ``lock``      — lock a ``.bench`` netlist with Cute-Lock-Str (or a baseline)
  and write the locked ``.bench`` plus the key schedule;
* ``attack``    — run one of the attacks against a locked ``.bench`` netlist
  given the oracle netlist (exit 0: defense held, 1: key recovered,
  2: attack error);
* ``overhead``  — report the 45 nm-model overhead of a locked netlist;
* ``benchmarks`` — list the bundled benchmark suites and their parameters;
* ``reproduce`` — regenerate the paper's evaluation (same as
  ``examples/reproduce_paper.py``);
* ``campaign``  — run / resume / inspect a parallel experiment campaign
  (``campaign run|status|resume|merge|report``, see :mod:`repro.campaign`).
  Sweeps shard across processes and hosts with ``--shard I/N``; ``campaign
  merge`` folds the per-shard stores back into one canonical store and
  ``campaign report --latex`` emits the paper's tables from it.
* ``trace``     — analyse structured event traces recorded with ``attack
  --trace`` / ``campaign run --trace`` (``trace summary|timeline|diff``,
  see :mod:`repro.trace` and ``TRACE_FORMAT.md``).
* ``check``     — static checks and certificates over the repo's unchecked
  invariants (``check lint|program|cnf|proof|equiv``, see
  :mod:`repro.check` and ``CHECKS.md``): the repo-specific AST linter, the
  generated-kernel verifier, the CNF well-formedness checker, the
  independent DRUP proof checker (replaying ``attack --certify``
  certificates) and SAT-based translation validation of the packed-kernel
  compiler.  Exit 0 clean, 1 findings, 2 error.
* ``perf``      — continuous performance observability (``perf
  run|list|history|compare|gate``, see :mod:`repro.perf` and
  ``PERF_FORMAT.md``): run the registered benchmark suites, append to the
  perf history, detect noise-aware regressions between commits and gate on
  the declared acceptance bars.  Exit 0 clean, 1 regression/bar failure,
  2 error.
"""

from __future__ import annotations

import argparse
import inspect
import json
import re
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.attacks import (
    appsat_attack,
    bmc_attack,
    double_dip_attack,
    fall_attack,
    int_attack,
    kc2_attack,
    rane_attack,
    sat_attack,
)
from repro.benchmarks_data import (
    ISCAS89_PROFILES,
    ITC99_PROFILES,
    SYNTHEZZA_PROFILES,
)
from repro.locking.base import KeySchedule
from repro.locking.baselines import lock_dklock, lock_harpoon, lock_rll, lock_sarlock, lock_ttlock
from repro.locking.cutelock_str import CuteLockStr
from repro.engine.packed import ENGINE_CHOICES
from repro.netlist.bench import load_bench, save_bench
from repro.sat.session import solver_backends
from repro.synthesis.overhead import analyze_circuit

_ATTACKS: Dict[str, Callable] = {
    "sat": sat_attack,
    "appsat": appsat_attack,
    "double-dip": double_dip_attack,
    "bmc": bmc_attack,
    "int": int_attack,
    "kc2": kc2_attack,
    "rane": rane_attack,
}

#: Grid names for ``campaign run --grid``.  Mirrors
#: ``repro.experiments.campaigns.GRIDS`` (asserted equal by the tests) so
#: building the parser never imports the experiments stack.
_CAMPAIGN_GRIDS = ("full", "table1", "table2", "table3", "table4", "table5",
                   "figure4", "smoke")


def _cmd_lock(args: argparse.Namespace) -> int:
    circuit = load_bench(args.netlist)
    if args.scheme == "cute-lock-str":
        transform = CuteLockStr(
            num_keys=args.keys, key_width=args.key_width,
            num_locked_ffs=args.locked_ffs, seed=args.seed,
        )
        locked = transform.lock(circuit)
    elif args.scheme == "rll":
        locked = lock_rll(circuit, args.key_width, seed=args.seed)
    elif args.scheme == "sarlock":
        locked = lock_sarlock(circuit, num_key_bits=args.key_width, seed=args.seed)
    elif args.scheme == "ttlock":
        locked = lock_ttlock(circuit, num_key_bits=args.key_width, seed=args.seed)
    elif args.scheme == "harpoon":
        locked = lock_harpoon(circuit, key_width=args.key_width, seed=args.seed)
    elif args.scheme == "dk-lock":
        locked = lock_dklock(circuit, key_width=args.key_width, seed=args.seed)
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(f"unknown scheme {args.scheme}")

    output = Path(args.output or f"{Path(args.netlist).stem}_{args.scheme}.bench")
    save_bench(locked.circuit, output, header=f"locked with {locked.scheme}")
    secret = {
        "scheme": locked.scheme,
        "key_inputs": locked.key_inputs,
        "key_width": locked.key_width,
        "schedule": list(locked.schedule.values),
        "locked_ffs": locked.locked_ffs,
    }
    secret_path = output.with_suffix(".key.json")
    secret_path.write_text(json.dumps(secret, indent=2))
    print(f"locked netlist : {output}")
    print(f"key schedule   : {secret_path}")
    print(f"summary        : {locked.describe()}")
    return 0


def _emit_json(payload: Dict[str, object], destination: Optional[str]) -> None:
    """Write ``payload`` to ``destination`` (``"-"`` = stdout)."""
    text = json.dumps(payload, indent=2)
    if destination == "-":
        print(text)
    else:
        Path(destination).write_text(text)  # type: ignore[arg-type]
        print(f"result written to {destination}")


def _cmd_attack(args: argparse.Namespace) -> int:
    """Run one attack.  Exit codes: 0 defense held, 1 key recovered, 2 error.

    The machine-readable surface (``--json``, ``--engine``, the exit codes)
    is shared with campaign workers and scripts: a crash inside the attack is
    reported as structured output and exit code 2 instead of a traceback.
    """
    attack = _ATTACKS[args.attack]
    kwargs: Dict[str, object] = {"time_limit": args.time_limit}
    parameters = inspect.signature(attack).parameters
    if "engine" in parameters:
        kwargs["engine"] = args.engine
    elif args.engine != "packed":
        print(f"note: {args.attack} has no engine switch; --engine ignored",
              file=sys.stderr)
    if "solver_backend" in parameters:
        kwargs["solver_backend"] = args.solver_backend
    certify_dir: Optional[Path] = None
    if args.certify:
        if "proof_dir" in parameters:
            certify_dir = Path(args.certify)
            kwargs["proof_dir"] = certify_dir
        else:
            print(f"note: {args.attack} has no certified mode; --certify ignored",
                  file=sys.stderr)
    trace_path: Optional[Path] = None
    if args.trace:
        # Name by attack + backend so the cdcl and cdcl-arena traces of the
        # same job coexist in one directory, ready for `repro trace diff`.
        trace_path = (
            Path(args.trace) / f"{args.attack}-{args.solver_backend}.trace.jsonl"
        )
    try:
        locked = load_bench(args.locked)
        oracle = load_bench(args.oracle)
        if not args.no_validate:
            # Strict structural validation at the ingestion boundary: a
            # malformed locked/oracle netlist (transform bug, truncated
            # file) fails fast here as exit 2 instead of mid-attack.
            from repro.netlist.validate import validate_circuit

            validate_circuit(locked, strict=True)
            validate_circuit(oracle, strict=True)
        if trace_path is not None:
            from repro.trace import trace_to

            with trace_to(trace_path, metadata={
                "attack": args.attack,
                "solver_backend": args.solver_backend,
                "locked": str(args.locked),
            }):
                result = attack(locked, oracle, **kwargs)
        else:
            result = attack(locked, oracle, **kwargs)
    except Exception as exc:
        print(f"attack error: {type(exc).__name__}: {exc}", file=sys.stderr)
        if args.json:
            _emit_json({
                "attack": args.attack,
                "error": f"{type(exc).__name__}: {exc}",
            }, args.json)
        return 2
    print(result.summary())
    if trace_path is not None:
        print(f"trace written to {trace_path}")
    if certify_dir is not None:
        count = result.details.get("certificates", 0)
        print(f"{count} UNSAT certificate pair(s) in {certify_dir} "
              f"(verify with `repro check proof CNF PROOF`)")
    if args.json:
        payload = result.to_dict()
        if trace_path is not None:
            payload["trace"] = str(trace_path)
        _emit_json(payload, args.json)
    return 0 if not result.broke_defense else 1


def _cmd_overhead(args: argparse.Namespace) -> int:
    circuit = load_bench(args.netlist)
    cost = analyze_circuit(circuit, activity_vectors=args.vectors)
    print(f"circuit    : {circuit.name}")
    print(f"power (uW) : {cost.power_uw:.2f}")
    print(f"area (um2) : {cost.area_um2:.2f}")
    print(f"cells      : {cost.cell_count}")
    print(f"IOs        : {cost.io_count}")
    print(f"flip-flops : {cost.num_dffs}")
    return 0


def _cmd_benchmarks(args: argparse.Namespace) -> int:
    if args.suite in ("synthezza", "all"):
        print("# Synthezza-style FSM benchmarks (Table III)")
        for name, profile in SYNTHEZZA_PROFILES.items():
            print(f"  {name:10s} group={profile.group:6s} states={profile.num_states:3d} "
                  f"k={profile.num_keys:2d} ki={profile.key_width:2d}")
    if args.suite in ("iscas89", "all"):
        print("# ISCAS'89-style benchmarks (Table IV)")
        for name, profile in ISCAS89_PROFILES.items():
            print(f"  {name:8s} inputs={profile.num_inputs:3d} dffs={profile.num_dffs:3d} "
                  f"k={profile.num_keys:2d} ki={profile.key_width:2d}")
    if args.suite in ("itc99", "all"):
        print("# ITC'99-style benchmarks (Tables IV/V, Figure 4)")
        for name, profile in ITC99_PROFILES.items():
            print(f"  {name:4s} inputs={profile.num_inputs:3d} dffs={profile.num_dffs:3d} "
                  f"k={profile.num_keys:2d} ki={profile.key_width:2d}")
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from repro.experiments import run_all

    run_all(quick=not args.full, attack_time_limit=args.time_limit,
            output_path=args.output, latex_path=args.latex,
            workers=args.workers, store_path=args.store,
            job_timeout=args.job_timeout)
    return 0


def _parse_shard(text: str) -> Tuple[int, int]:
    """Parse ``--shard I/N`` (1-based on the command line) to ``(index, count)``."""
    match = re.fullmatch(r"(\d+)/(\d+)", text.strip())
    if not match:
        raise argparse.ArgumentTypeError(
            f"expected --shard I/N (e.g. 2/4), got {text!r}")
    index, count = int(match.group(1)), int(match.group(2))
    if count < 1 or not 1 <= index <= count:
        raise argparse.ArgumentTypeError(
            f"shard index must satisfy 1 <= I <= N, got {text!r}")
    return index - 1, count


def _campaign_spec(args: argparse.Namespace, store) -> "object":
    """Resolve the campaign spec for one ``campaign`` subcommand.

    ``run`` always builds the grid from its flags (``--grid``/``--full``/
    ``--time-limit``/``--engine``) and persists it as the store's manifest —
    so changed flags take effect instead of being silently shadowed by an
    older manifest; cells unchanged by the flags keep their content-hashed
    keys and are still skipped.  ``resume``/``status``/``report`` always use
    the stored manifest.
    """
    if args.command_campaign == "run":
        from repro.experiments.campaigns import build_campaign

        return build_campaign(
            args.grid or "full",
            quick=not args.full,
            attack_time_limit=args.time_limit,
            engine=args.engine,
            solver_backend=args.solver_backend,
        )
    if store.has_manifest():
        return store.read_manifest()
    raise SystemExit(
        f"no campaign manifest in {args.store}; start one with "
        "`python -m repro campaign run --store ...`"
    )


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.campaign import (
        ResultStore,
        campaign_status,
        merge_stores,
        progress_printer,
        render_merge_summary,
        render_status,
        run_campaign,
        shard_label,
    )
    from repro.experiments.campaigns import aggregate_campaign, campaign_latex
    from repro.experiments.runner import write_report

    if args.command_campaign == "merge":
        from repro.campaign import MergeVerificationError

        try:
            summary = merge_stores(args.store, extra=args.sources,
                                   prune=args.prune)
        except MergeVerificationError as exc:
            print(f"merge --prune refused: {exc}", file=sys.stderr)
            return 1
        print(render_merge_summary(summary))
        return 0

    shard: Optional[Tuple[int, int]] = getattr(args, "shard", None)
    store = ResultStore(
        args.store, shard=shard_label(*shard) if shard else None
    )
    spec = _campaign_spec(args, store)
    if shard is not None:
        # The manifest always describes the FULL grid (merge/report rebuild
        # it); only the executed slice is sharded.  ``resume`` keeps the
        # manifest a previous run already wrote.
        if args.command_campaign == "run" and store.persistent:
            store.write_manifest(spec)
        strategy = getattr(args, "shard_strategy", "round-robin")
        costs = None
        if strategy == "cost":
            # The cost table must be a frozen, shared input: every host (and
            # every later status/report call) has to compute the identical
            # partition, and a host's own store is still filling up — so an
            # explicit prior-sweep store is required, never defaulted.
            costs_store = getattr(args, "shard_costs", None)
            if not costs_store:
                raise SystemExit(
                    "--shard-strategy cost requires --shard-costs STORE (a "
                    "prior sweep's store; pass the same one on every host "
                    "and every status/report call)"
                )
            from repro.campaign import measured_job_costs

            costs = measured_job_costs(costs_store)
        spec = spec.shard(*shard, strategy=strategy, costs=costs)

    if args.command_campaign in ("run", "resume"):
        quiet = getattr(args, "quiet", False)
        if not quiet:
            mode = f"{args.workers} workers" if args.workers else "serial"
            shard_note = f", shard {shard[0] + 1}/{shard[1]}" if shard else ""
            print(f"campaign {spec.name}: {len(spec.jobs)} jobs "
                  f"({mode}{shard_note})", flush=True)
        summary = run_campaign(
            spec, store,
            workers=args.workers,
            job_timeout=args.job_timeout,
            retry_failed=args.retry_failed,
            progress=None if quiet else progress_printer(),
            write_manifest=shard is None,
            trace_dir=getattr(args, "trace", None),
        )
        status = campaign_status(spec, store)
        print(render_status(status))
        if args.report:
            tables = aggregate_campaign(spec, store)
            write_report(tables, args.report, elapsed=summary.wall_seconds)
            print(f"report written to {args.report}")
        # Non-zero when the sweep is not clean, so CI and scripts can gate
        # on a fully-completed campaign (or shard) without parsing the
        # status text.
        return 0 if status.finished and not (status.errors or status.timeouts) else 1

    if args.command_campaign == "status":
        print(render_status(campaign_status(spec, store)))
        return 0

    if args.command_campaign == "report":
        if args.latex:
            text = campaign_latex(
                spec, store, redact_runtimes=args.redact_runtimes
            )
            if args.output:
                Path(args.output).write_text(text)
                print(f"LaTeX tables written to {args.output}")
            else:
                print(text)
            return 0
        tables = aggregate_campaign(
            spec, store, redact_runtimes=args.redact_runtimes
        )
        if args.output:
            write_report(tables, args.output)
            print(f"report written to {args.output}")
        else:
            for table in tables.values():
                print(table.to_text())
                print()
        return 0

    raise SystemExit(f"unknown campaign command {args.command_campaign!r}")


def _cmd_trace(args: argparse.Namespace) -> int:
    """Analyse event-trace files (see repro.trace / TRACE_FORMAT.md)."""
    from repro.trace import (
        diff_traces,
        render_diff,
        render_summary,
        render_timeline,
        summarize_trace,
    )

    if args.command_trace == "summary":
        summary = summarize_trace(args.trace)
        print(render_summary(summary))
        if args.json:
            _emit_json(summary, args.json)
        return 0
    if args.command_trace == "timeline":
        print(render_timeline(args.trace, buckets=args.buckets))
        return 0
    if args.command_trace == "diff":
        diff = diff_traces(args.a, args.b)
        print(render_diff(diff))
        if args.json:
            _emit_json(diff, args.json)
        return 0
    raise SystemExit(f"unknown trace command {args.command_trace!r}")


def _cmd_check(args: argparse.Namespace) -> int:
    """Static checks (see repro.check / CHECKS.md).

    Exit codes: 0 = clean, 1 = findings/violations, 2 = analysis error.
    """
    if args.command_check == "lint":
        from repro.check.lint import lint_paths, render_findings

        paths = args.paths or ["src"]
        missing = [path for path in paths if not Path(path).exists()]
        if missing:
            print(f"check lint: no such path: {', '.join(missing)}",
                  file=sys.stderr)
            return 2
        findings = lint_paths(paths)
        if args.json:
            _emit_json({
                "findings": [finding.to_dict() for finding in findings],
                "count": len(findings),
            }, args.json)
        else:
            print(render_findings(findings))
        return 1 if findings else 0

    if args.command_check == "program":
        from repro.check.program import (
            KernelVerificationError,
            verify_compiled,
            verify_compiled_numpy,
        )
        from repro.engine.compiler import compile_circuit
        from repro.netlist.circuit import CircuitError

        targets = ("bigint", "numpy") if args.target == "both" else (args.target,)
        try:
            circuit = load_bench(args.netlist)
            # codegen=False: verify the kernel source without executing it.
            # Neither target needs numpy importable — only running does.
            compiled = compile_circuit(circuit, codegen=False)
            counts = {}
            for target in targets:
                verifier = verify_compiled if target == "bigint" else verify_compiled_numpy
                counts[target] = len(verifier(compiled))
        except KernelVerificationError as exc:
            print(f"check program: {exc}", file=sys.stderr)
            return 1
        except (OSError, CircuitError) as exc:
            print(f"check program: {type(exc).__name__}: {exc}", file=sys.stderr)
            return 2
        summary = ", ".join(
            f"{count} {target} kernel ops" for target, count in counts.items()
        )
        print(f"check program: {circuit.name}: verified "
              f"{summary} over {compiled.num_slots} slots "
              f"({compiled.num_levels} levels)")
        return 0

    if args.command_check == "cnf":
        from repro.check.certify.dimacs import DimacsError, load_dimacs
        from repro.check.solver import check_cnf

        # Standard multi-line DIMACS parse (clauses are 0-terminated token
        # streams), so external instances read the same way drat-trim and
        # the competition solvers read them; malformed *clauses* survive
        # parsing and the checker names each violation.
        try:
            dimacs = load_dimacs(args.cnf)
        except OSError as exc:
            print(f"check cnf: {exc}", file=sys.stderr)
            return 2
        except DimacsError as exc:
            print(f"check cnf: {exc}", file=sys.stderr)
            return 2
        violations = check_cnf(dimacs.clauses, num_vars=dimacs.header_vars)
        if violations:
            for violation in violations:
                print(violation.render())
            print(f"{len(violations)} violation(s) in {args.cnf}")
            return 1
        print(f"check cnf: {args.cnf}: {len(dimacs.clauses)} clauses ok")
        return 0

    if args.command_check == "proof":
        from repro.check.certify.dimacs import DimacsError
        from repro.check.certify.drup import ProofError, check_certificate

        try:
            stats = check_certificate(args.cnf, args.proof)
        except (OSError, DimacsError) as exc:
            print(f"check proof: {exc}", file=sys.stderr)
            return 2
        except ProofError as exc:
            print(f"check proof: {exc}", file=sys.stderr)
            return 1
        print(f"check proof: {args.proof}: UNSAT verified ({stats.render()})")
        return 0

    if args.command_check == "equiv":
        from repro.check.certify.equiv import (
            fixture_names,
            load_fixture,
            validate_circuit,
        )
        from repro.check.program import KernelVerificationError
        from repro.netlist.circuit import CircuitError

        if args.all_fixtures:
            names = fixture_names()
        elif args.circuit:
            names = [args.circuit]
        else:
            print("check equiv: pass --circuit NAME|PATH or --all-fixtures",
                  file=sys.stderr)
            return 2
        diverged = 0
        for name in names:
            try:
                if not args.all_fixtures and Path(name).exists():
                    circuit = load_bench(name)
                else:
                    circuit = load_fixture(name)
                report = validate_circuit(
                    circuit,
                    backend=args.solver_backend,
                    proof_dir=args.proof_dir,
                    check_proofs=not args.skip_proofs,
                )
            except KeyError as exc:
                print(f"check equiv: {exc.args[0]}", file=sys.stderr)
                return 2
            except KernelVerificationError as exc:
                # The kernel is not even structurally valid: that is a
                # finding about the compiled program, not an analysis error.
                print(f"check equiv: {exc}", file=sys.stderr)
                return 1
            except (OSError, CircuitError) as exc:
                print(f"check equiv: {type(exc).__name__}: {exc}", file=sys.stderr)
                return 2
            print(report.render(), flush=True)
            if not report.ok:
                diverged += 1
        return 1 if diverged else 0

    raise SystemExit(f"unknown check command {args.command_check!r}")


def _perf_selection(args: argparse.Namespace):
    """Resolve --suite/--bench filters to registered benchmarks."""
    from repro.perf import load_suites, select_benchmarks

    load_suites()
    return select_benchmarks(
        suites=tuple(getattr(args, "suite", None) or ()),
        benches=tuple(getattr(args, "bench", None) or ()),
    )


def _cmd_perf(args: argparse.Namespace) -> int:
    """Performance observability (see repro.perf / PERF_FORMAT.md).

    Exit codes: 0 = clean, 1 = regression / bar failure, 2 = error.
    """
    from repro.perf import (
        PerfHistory,
        compare_records,
        environment_fingerprint,
        evaluate_gate,
        render_compare,
        render_gate,
        render_run,
        run_registered,
        write_snapshots,
    )

    if args.command_perf == "list":
        benches = _perf_selection(args)
        if args.json:
            _emit_json({"benchmarks": [bench.to_dict() for bench in benches]},
                       args.json)
            return 0
        for bench in benches:
            bars = "; ".join(bar.describe() for bar in bench.bars) or "(no bars)"
            print(f"{bench.name:28s} {bars}")
            if bench.description:
                print(f"  {bench.description}")
        print(f"{len(benches)} registered bench(es)")
        return 0

    if args.command_perf == "run":
        try:
            benches = _perf_selection(args)
        except KeyError as exc:
            print(f"perf run: {exc.args[0]}", file=sys.stderr)
            return 2
        history = PerfHistory(args.history)
        env = environment_fingerprint()
        results = []
        for bench in benches:
            print(f"[{len(results) + 1}/{len(benches)}] {bench.name} ...",
                  flush=True)
            try:
                result = run_registered(bench.name, smoke=args.smoke, env=env)
            except Exception as exc:
                print(f"perf run: {bench.name}: {type(exc).__name__}: {exc}",
                      file=sys.stderr)
                return 2
            print(render_run(result))
            results.append(result)
            history.append(result.to_record())
        if not args.no_snapshots:
            for path in write_snapshots(history, args.snapshot_dir):
                print(f"snapshot written to {path}")
        print(f"history appended to {history.path} "
              f"({len(results)} record(s))")
        failed = [result for result in results if not result.ok]
        if args.json:
            _emit_json({
                "smoke": args.smoke,
                "results": [result.to_record() for result in results],
                "failed": [result.bench for result in failed],
                "ok": not failed,
            }, args.json)
        if failed:
            for result in failed:
                print(f"BAR FAILURE: {result.failure_text()}", file=sys.stderr)
            return 1
        return 0

    if args.command_perf == "history":
        history = PerfHistory(args.history)
        if not Path(history.path).exists():
            print(f"perf history: no history at {history.path}", file=sys.stderr)
            return 2
        records = history.records()
        if args.bench:
            records = [record for record in records
                       if record.get("bench") in set(args.bench)]
        if args.limit:
            records = records[-args.limit:]
        if args.json:
            _emit_json({"records": records, "count": len(records)}, args.json)
            return 0
        for record in records:
            env = record.get("env") or {}
            sha = str(env.get("git_sha") or "-")[:12]
            mode = "smoke" if record.get("smoke") else "full"
            ok = "ok" if record.get("ok") else "FAIL"
            elapsed = record.get("elapsed_seconds")
            elapsed_text = (
                f"{float(elapsed):8.2f}s" if isinstance(elapsed, (int, float))
                else "       -")
            print(f"{str(record.get('bench')):28s} {sha:12s} {mode:5s} "
                  f"{elapsed_text}  {ok}")
        print(f"{len(records)} record(s) in {history.path}")
        return 0

    if args.command_perf == "compare":
        baseline_history = PerfHistory(args.baseline)
        candidate_history = PerfHistory(args.candidate or args.history)
        for history in (baseline_history, candidate_history):
            if not Path(history.path).exists():
                print(f"perf compare: no history at {history.path}",
                      file=sys.stderr)
                return 2
        try:
            baseline = (
                baseline_history.for_sha(args.baseline_sha, smoke=args.smoke)
                if args.baseline_sha
                else baseline_history.latest(smoke=args.smoke)
            )
            candidate = (
                candidate_history.for_sha(args.candidate_sha, smoke=args.smoke)
                if args.candidate_sha
                else candidate_history.latest(smoke=args.smoke)
            )
            comparison = compare_records(baseline, candidate,
                                         threshold=args.threshold)
        except ValueError as exc:
            print(f"perf compare: {exc}", file=sys.stderr)
            return 2
        print(render_compare(comparison))
        if args.json:
            _emit_json(comparison, args.json)
        return 0 if comparison["ok"] else 1

    if args.command_perf == "gate":
        try:
            benches = _perf_selection(args)
        except KeyError as exc:
            print(f"perf gate: {exc.args[0]}", file=sys.stderr)
            return 2
        history = PerfHistory(args.history)
        if not Path(history.path).exists():
            print(f"perf gate: no history at {history.path} "
                  "(run `repro perf run` first)", file=sys.stderr)
            return 2
        gate = evaluate_gate(history.latest(smoke=args.smoke),
                             smoke=args.smoke, benchmarks=benches)
        print(render_gate(gate))
        if args.json:
            _emit_json(gate, args.json)
        return 0 if gate["ok"] else 1

    raise SystemExit(f"unknown perf command {args.command_perf!r}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    lock = sub.add_parser("lock", help="lock a .bench netlist")
    lock.add_argument("netlist")
    lock.add_argument("--scheme", default="cute-lock-str",
                      choices=["cute-lock-str", "rll", "sarlock", "ttlock",
                               "harpoon", "dk-lock"])
    lock.add_argument("--keys", type=int, default=4, help="number of key values (k)")
    lock.add_argument("--key-width", type=int, default=2, help="bits per key value (ki)")
    lock.add_argument("--locked-ffs", type=int, default=1)
    lock.add_argument("--seed", type=int, default=0)
    lock.add_argument("--output")
    lock.set_defaults(func=_cmd_lock)

    attack = sub.add_parser(
        "attack", help="attack a locked .bench netlist",
        description="Exit codes: 0 = defense held, 1 = working key recovered, "
                    "2 = attack error.")
    attack.add_argument("locked")
    attack.add_argument("oracle")
    attack.add_argument("--attack", default="sat", choices=sorted(_ATTACKS))
    attack.add_argument("--time-limit", type=float, default=60.0)
    attack.add_argument("--engine", default="packed", choices=list(ENGINE_CHOICES),
                        help="packed = batched DIP/DIS harvesting with the "
                             "auto-selected backend (default); packed-bigint/"
                             "packed-numpy pin the packed evaluation backend; "
                             "scalar = bit-exact legacy path")
    attack.add_argument("--solver-backend", default="cdcl",
                        choices=list(solver_backends()),
                        help="CDCL session backend: cdcl = reference solver; "
                             "cdcl-arena = tuned arena-flattened variant "
                             "(identical SAT/UNSAT answers)")
    attack.add_argument("--json", nargs="?", const="-", default=None,
                        metavar="PATH",
                        help="emit the full result as JSON (to PATH, or to "
                             "stdout when no path is given)")
    attack.add_argument("--trace", default=None, metavar="DIR",
                        help="record a structured event trace to "
                             "DIR/<attack>-<backend>.trace.jsonl (analyse "
                             "with 'repro trace', see TRACE_FORMAT.md)")
    attack.add_argument("--no-validate", action="store_true",
                        help="skip the strict structural validation of the "
                             "locked and oracle netlists (escape hatch for "
                             "deliberately malformed inputs)")
    attack.add_argument("--certify", default=None, metavar="DIR",
                        help="certified mode: log DRUP proofs and write a "
                             "CNF+proof certificate pair into DIR for every "
                             "UNSAT solver answer (verify each with "
                             "'repro check proof', see CHECKS.md)")
    attack.set_defaults(func=_cmd_attack)

    overhead = sub.add_parser("overhead", help="report 45nm-model cost of a netlist")
    overhead.add_argument("netlist")
    overhead.add_argument("--vectors", type=int, default=64)
    overhead.set_defaults(func=_cmd_overhead)

    benches = sub.add_parser("benchmarks", help="list bundled benchmark suites")
    benches.add_argument("--suite", default="all",
                         choices=["all", "synthezza", "iscas89", "itc99"])
    benches.set_defaults(func=_cmd_benchmarks)

    reproduce = sub.add_parser("reproduce", help="regenerate the paper's evaluation")
    reproduce.add_argument("--full", action="store_true")
    reproduce.add_argument("--time-limit", type=float, default=20.0)
    reproduce.add_argument("--output", default="experiments_report.md")
    reproduce.add_argument("--latex", default=None, metavar="PATH",
                           help="also write the tables as a LaTeX fragment")
    reproduce.add_argument("--workers", type=int, default=0,
                           help="worker processes (0 = serial in-process)")
    reproduce.add_argument("--store", default=None,
                           help="campaign store directory (enables resume)")
    reproduce.add_argument("--job-timeout", type=float, default=None,
                           help="per-cell wall-clock budget in seconds")
    reproduce.set_defaults(func=_cmd_reproduce)

    campaign = sub.add_parser(
        "campaign",
        help="run/resume/inspect/merge a parallel experiment campaign",
        description="Parallel, resumable experiment sweeps backed by an "
                    "append-only JSONL store (see repro.campaign).  Shard a "
                    "sweep over processes/hosts with --shard I/N, fold the "
                    "shard stores together with 'merge', then render with "
                    "'report' (add --latex for the paper's tables).")
    campaign_sub = campaign.add_subparsers(dest="command_campaign", required=True)

    def _store_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument("--store", required=True,
                       help="campaign store directory (manifest + results.jsonl)")

    def _shard_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument("--shard", type=_parse_shard, default=None, metavar="I/N",
                       help="operate on shard I of N (deterministic 1-based "
                            "partition of the grid; results go to "
                            "results-IofN.jsonl, see 'campaign merge')")

    def _shard_strategy_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--shard-strategy", default="round-robin",
                       choices=["round-robin", "cost"],
                       help="how --shard partitions the grid: round-robin "
                            "striping (default) or a greedy LPT partition "
                            "balanced by measured per-cell cpu_seconds")
        p.add_argument("--shard-costs", default=None, metavar="STORE",
                       help="store directory whose records supply the "
                            "per-cell costs (required with --shard-strategy "
                            "cost; give every host and every status/report "
                            "call the SAME store so they all compute the "
                            "identical partition)")

    def _exec_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--workers", type=int, default=0,
                       help="worker processes (0 = serial in-process)")
        p.add_argument("--job-timeout", type=float, default=None,
                       help="per-job wall-clock budget in seconds")
        p.add_argument("--retry-failed", action="store_true",
                       help="re-run jobs whose latest row is error/timeout")
        p.add_argument("--report", default=None,
                       help="write the aggregated Markdown report here afterwards")
        p.add_argument("--quiet", action="store_true",
                       help="suppress per-job progress lines")
        p.add_argument("--trace", default=None, metavar="DIR",
                       help="record a per-job event trace to "
                            "DIR/<jobkey>.trace.jsonl (shard-safe: keys are "
                            "disjoint across shards; the path lands on each "
                            "result record under 'trace')")
        _shard_arg(p)
        _shard_strategy_args(p)

    campaign_run = campaign_sub.add_parser(
        "run", help="start (or continue) a campaign",
        description="Builds the grid from the flags below, (re)writes the "
                    "store's manifest, and runs it; cells whose content-"
                    "hashed key already has a completed row are skipped.  "
                    "Exit 0 only when every job completed cleanly.  Use "
                    "'resume' to continue the stored grid as-is.")
    _store_arg(campaign_run)
    campaign_run.add_argument("--grid", default=None, choices=list(_CAMPAIGN_GRIDS),
                              help="which grid to run (default: full)")
    campaign_run.add_argument("--full", action="store_true",
                              help="paper-sized benchmark lists instead of the "
                                   "quick subsets")
    campaign_run.add_argument("--time-limit", type=float, default=20.0,
                              help="per-attack time budget in seconds")
    campaign_run.add_argument("--engine", default="packed",
                              choices=list(ENGINE_CHOICES))
    campaign_run.add_argument("--solver-backend", default="cdcl",
                              choices=list(solver_backends()),
                              help="CDCL session backend every attack cell "
                                   "solves through (telemetry is recorded "
                                   "either way)")
    _exec_args(campaign_run)
    campaign_run.set_defaults(func=_cmd_campaign)

    campaign_resume = campaign_sub.add_parser(
        "resume", help="finish the missing cells of a stored campaign",
        description="Re-reads the store's manifest and runs only jobs without "
                    "a completed row (add --retry-failed to also re-run "
                    "error/timeout rows).")
    _store_arg(campaign_resume)
    _exec_args(campaign_resume)
    campaign_resume.set_defaults(func=_cmd_campaign)

    campaign_status_p = campaign_sub.add_parser(
        "status", help="show completed/timeout/error/remaining counts")
    _store_arg(campaign_status_p)
    _shard_arg(campaign_status_p)
    _shard_strategy_args(campaign_status_p)
    campaign_status_p.set_defaults(func=_cmd_campaign)

    campaign_merge = campaign_sub.add_parser(
        "merge", help="fold per-shard result stores into the canonical store",
        description="Folds results-*.jsonl shard files (plus any extra "
                    "stores/files given positionally, e.g. copied from other "
                    "hosts) into the store's canonical results.jsonl. "
                    "Latest finished_at wins per job key, exact duplicates "
                    "are dropped and the output is byte-stable, so merging "
                    "is idempotent and a merged report matches a serial "
                    "single-store run.")
    _store_arg(campaign_merge)
    campaign_merge.add_argument(
        "sources", nargs="*", default=[],
        help="extra results files or store directories to fold in")
    campaign_merge.add_argument(
        "--prune", action="store_true",
        help="after a successful fold, verify the canonical store covers "
             "every source record and then delete this store's shard files "
             "(refuses, deleting nothing, if verification fails)")
    campaign_merge.set_defaults(func=_cmd_campaign)

    campaign_report = campaign_sub.add_parser(
        "report", help="aggregate stored results into the Markdown report")
    _store_arg(campaign_report)
    _shard_arg(campaign_report)
    _shard_strategy_args(campaign_report)
    campaign_report.add_argument("--output", default=None,
                                 help="report path (default: print to stdout)")
    campaign_report.add_argument("--redact-runtimes", action="store_true",
                                 help="blank the wall-clock columns (stable "
                                      "output for diffs)")
    campaign_report.add_argument("--latex", action="store_true",
                                 help="emit the paper's LaTeX tables instead "
                                      "of the Markdown report")
    campaign_report.set_defaults(func=_cmd_campaign)

    trace = sub.add_parser(
        "trace", help="analyse structured event traces",
        description="Analyse .trace.jsonl files recorded with "
                    "'repro attack --trace' or 'campaign run --trace' "
                    "(format: TRACE_FORMAT.md).")
    trace_sub = trace.add_subparsers(dest="command_trace", required=True)

    trace_summary = trace_sub.add_parser(
        "summary", help="per-phase time breakdown of one trace")
    trace_summary.add_argument("trace", help=".trace.jsonl file")
    trace_summary.add_argument("--json", nargs="?", const="-", default=None,
                               metavar="PATH",
                               help="also emit the summary as JSON")
    trace_summary.set_defaults(func=_cmd_trace)

    trace_timeline = trace_sub.add_parser(
        "timeline", help="conflict-rate / learned-clause-rate buckets")
    trace_timeline.add_argument("trace", help=".trace.jsonl file")
    trace_timeline.add_argument("--buckets", type=int, default=20,
                                help="number of time slices (default 20)")
    trace_timeline.set_defaults(func=_cmd_trace)

    trace_diff = trace_sub.add_parser(
        "diff", help="A/B per-phase comparison of two traces of one job",
        description="Compare two traces of the same job (e.g. cdcl vs "
                    "cdcl-arena): per-phase seconds and conflicts, total "
                    "counters, and the maximum relative drift (0% for "
                    "identical traces).")
    trace_diff.add_argument("a", help="baseline .trace.jsonl")
    trace_diff.add_argument("b", help="comparison .trace.jsonl")
    trace_diff.add_argument("--json", nargs="?", const="-", default=None,
                            metavar="PATH",
                            help="also emit the comparison as JSON")
    trace_diff.set_defaults(func=_cmd_trace)

    check = sub.add_parser(
        "check", help="static checks: lint, kernel verifier, CNF/proof audit",
        description="Static analysis and certificates over the repo's "
                    "unchecked invariants (rule catalogue: CHECKS.md).  "
                    "Exit 0 = clean, 1 = findings, 2 = analysis error.")
    check_sub = check.add_subparsers(dest="command_check", required=True)

    check_lint = check_sub.add_parser(
        "lint", help="run the repo-specific AST linter",
        description="AST lint with repo-specific rules (R001-R006: "
                    "wall-clock/unseeded-random in byte-identity-critical "
                    "modules, raw JSONL loops, # hot-loop call discipline, "
                    "to_dict/from_dict completeness, silent exception "
                    "swallowing).  Suppress per line with "
                    "'# repro-lint: disable=RULE'.")
    check_lint.add_argument("paths", nargs="*",
                            help="files or directories (default: src)")
    check_lint.add_argument("--json", nargs="?", const="-", default=None,
                            metavar="PATH",
                            help="emit findings as JSON (file, line, rule, "
                                 "message) to PATH or stdout")
    check_lint.set_defaults(func=_cmd_check)

    check_program = check_sub.add_parser(
        "program", help="verify the generated engine kernels of a netlist",
        description="Compiles the circuit and proves the generated kernel "
                    "source is straight-line, levelized, bitwise-only code "
                    "without executing it (the same verifier the engine runs "
                    "before exec under REPRO_CHECK_KERNELS=1).")
    check_program.add_argument("netlist", help=".bench netlist")
    check_program.add_argument(
        "--target", default="both", choices=["bigint", "numpy", "both"],
        help="which codegen target's kernels to verify (default: both; "
             "verification never executes them, so numpy need not be "
             "installed)")
    check_program.set_defaults(func=_cmd_check)

    check_cnf_p = check_sub.add_parser(
        "cnf", help="audit a DIMACS CNF file for well-formedness",
        description="Reads standard DIMACS (clauses may span lines) and "
                    "reports out-of-range variables, duplicate literals, "
                    "tautologies and empty clauses.")
    check_cnf_p.add_argument("cnf", help="DIMACS .cnf file")
    check_cnf_p.set_defaults(func=_cmd_check)

    check_proof_p = check_sub.add_parser(
        "proof", help="replay a DRUP proof with the independent checker",
        description="Replays a DRUP proof against the original CNF with an "
                    "independent watched-literal unit propagator (no code "
                    "shared with the solvers): every clause addition must "
                    "be derivable by reverse unit propagation and the proof "
                    "must end in the empty clause.  Certificate pairs come "
                    "from 'repro attack --certify DIR' or any "
                    "SolveSession(proof_path=...).  Exit 0 = verified, "
                    "1 = proof rejected (line-numbered reason), 2 = "
                    "unreadable input.")
    check_proof_p.add_argument("cnf", help="DIMACS .cnf file the proof refutes")
    check_proof_p.add_argument("proof", help="DRUP proof file (.drup)")
    check_proof_p.set_defaults(func=_cmd_check)

    check_equiv_p = check_sub.add_parser(
        "equiv", help="translation validation: packed kernels vs netlist",
        description="Proves the compiler's generated kernel source "
                    "equivalent to the netlist semantics: both are encoded "
                    "to CNF and every output / next-state bit's miter is "
                    "proven UNSAT (a SAT miter prints a counterexample "
                    "assignment).  Miter proofs are themselves DRUP-checked "
                    "unless --skip-proofs.  Exit 0 = equivalent, 1 = any "
                    "bit diverges, 2 = error.")
    check_equiv_p.add_argument("--circuit", default=None, metavar="NAME|PATH",
                               help="a bundled fixture name (see 'repro "
                                    "benchmarks') or a .bench file path")
    check_equiv_p.add_argument("--all-fixtures", action="store_true",
                               help="validate every bundled ISCAS'89 + "
                                    "ITC'99 fixture")
    check_equiv_p.add_argument("--solver-backend", default="cdcl",
                               choices=list(solver_backends()),
                               help="backend that solves the miters")
    check_equiv_p.add_argument("--proof-dir", default=None, metavar="DIR",
                               help="keep the miter certificate pairs here "
                                    "(default: a temporary directory)")
    check_equiv_p.add_argument("--skip-proofs", action="store_true",
                               help="skip re-checking the miter UNSAT "
                                    "proofs with the independent checker")
    check_equiv_p.set_defaults(func=_cmd_check)

    perf = sub.add_parser(
        "perf", help="run/compare/gate the registered performance benchmarks",
        description="Continuous performance observability (see repro.perf "
                    "and PERF_FORMAT.md): a registry of benchmarks with "
                    "declarative acceptance bars, an append-only JSONL "
                    "history and noise-aware regression detection.  Exit "
                    "0 = clean, 1 = regression / bar failure, 2 = error.")
    perf_sub = perf.add_subparsers(dest="command_perf", required=True)

    def _perf_history_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument("--history", default="perf-history.jsonl",
                       help="perf history JSONL file "
                            "(default: perf-history.jsonl)")

    def _perf_select_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--suite", action="append", default=None,
                       metavar="SUITE",
                       help="restrict to one suite (repeatable)")
        p.add_argument("--bench", action="append", default=None,
                       metavar="NAME",
                       help="restrict to one bench by full name (repeatable)")

    def _perf_json_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument("--json", nargs="?", const="-", default=None,
                       metavar="PATH",
                       help="emit the machine-readable result as JSON "
                            "(to PATH, or stdout when no path is given)")

    perf_run = perf_sub.add_parser(
        "run", help="run registered benches and append to the history",
        description="Runs the selected benches (default: all), appends one "
                    "record per bench to the history and refreshes the "
                    "BENCH_<suite>.json snapshots.  Exit 1 if any "
                    "acceptance bar failed.")
    _perf_select_args(perf_run)
    _perf_history_arg(perf_run)
    perf_run.add_argument("--smoke", action="store_true",
                          help="reduced workloads and relaxed bars (same as "
                               "REPRO_BENCH_SMOKE=1 for the pytest wrappers)")
    perf_run.add_argument("--snapshot-dir", default=".",
                          help="directory for BENCH_<suite>.json snapshots "
                               "(default: current directory)")
    perf_run.add_argument("--no-snapshots", action="store_true",
                          help="skip writing the snapshot files")
    _perf_json_arg(perf_run)
    perf_run.set_defaults(func=_cmd_perf)

    perf_list = perf_sub.add_parser(
        "list", help="list the registered benches, params and bars")
    _perf_select_args(perf_list)
    _perf_json_arg(perf_list)
    perf_list.set_defaults(func=_cmd_perf)

    perf_history = perf_sub.add_parser(
        "history", help="show recorded perf runs",
        description="One line per record: bench, git sha, mode, elapsed, "
                    "bar outcome.")
    _perf_history_arg(perf_history)
    perf_history.add_argument("--bench", action="append", default=None,
                              metavar="NAME",
                              help="only records of this bench (repeatable)")
    perf_history.add_argument("--limit", type=int, default=0,
                              help="show only the last N records")
    _perf_json_arg(perf_history)
    perf_history.set_defaults(func=_cmd_perf)

    perf_compare = perf_sub.add_parser(
        "compare", help="noise-aware regression check between two runs",
        description="Compares the latest record per bench on each side "
                    "(median + IQR of the primary series).  A bench is only "
                    "'regressed'/'improved' when the medians differ by more "
                    "than --threshold AND the IQR ranges do not overlap; a "
                    "bench recorded in the baseline but absent from the "
                    "candidate is 'missing' and fails the comparison.  "
                    "Exit 1 on any regression or missing bench.")
    perf_compare.add_argument("baseline",
                              help="baseline history JSONL file")
    perf_compare.add_argument("candidate", nargs="?", default=None,
                              help="candidate history JSONL (default: "
                                   "--history)")
    _perf_history_arg(perf_compare)
    perf_compare.add_argument("--baseline-sha", default=None, metavar="SHA",
                              help="pick the baseline records by git sha "
                                   "(unique prefix) instead of latest")
    perf_compare.add_argument("--candidate-sha", default=None, metavar="SHA",
                              help="pick the candidate records by git sha "
                                   "(unique prefix) instead of latest")
    perf_compare.add_argument("--threshold", type=float, default=0.10,
                              help="relative median change below which drift "
                                   "is always noise (default: 0.10)")
    perf_compare.add_argument("--smoke", action="store_true",
                              help="compare smoke-mode records (default: "
                                   "full-mode records)")
    _perf_json_arg(perf_compare)
    perf_compare.set_defaults(func=_cmd_perf)

    perf_gate = perf_sub.add_parser(
        "gate", help="enforce the declared acceptance bars on the history",
        description="Re-evaluates every selected bar-bearing bench's bars "
                    "against its latest recorded metrics.  A bar-bearing "
                    "bench with no record gates as missing.  Exit 1 on any "
                    "failure.")
    _perf_select_args(perf_gate)
    _perf_history_arg(perf_gate)
    perf_gate.add_argument("--smoke", action="store_true",
                           help="gate smoke-mode records against the "
                                "relaxed smoke bars")
    _perf_json_arg(perf_gate)
    perf_gate.set_defaults(func=_cmd_perf)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - module entry point
    sys.exit(main())
