"""Command-line interface.

``python -m repro <command>`` exposes the main workflows without writing any
Python:

* ``lock``      — lock a ``.bench`` netlist with Cute-Lock-Str (or a baseline)
  and write the locked ``.bench`` plus the key schedule;
* ``attack``    — run one of the attacks against a locked ``.bench`` netlist
  given the oracle netlist;
* ``overhead``  — report the 45 nm-model overhead of a locked netlist;
* ``benchmarks`` — list the bundled benchmark suites and their parameters;
* ``reproduce`` — regenerate the paper's evaluation (same as
  ``examples/reproduce_paper.py``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.attacks import (
    appsat_attack,
    bmc_attack,
    double_dip_attack,
    fall_attack,
    int_attack,
    kc2_attack,
    rane_attack,
    sat_attack,
)
from repro.benchmarks_data import (
    ISCAS89_PROFILES,
    ITC99_PROFILES,
    SYNTHEZZA_PROFILES,
)
from repro.locking.base import KeySchedule
from repro.locking.baselines import lock_dklock, lock_harpoon, lock_rll, lock_sarlock, lock_ttlock
from repro.locking.cutelock_str import CuteLockStr
from repro.netlist.bench import load_bench, save_bench
from repro.synthesis.overhead import analyze_circuit

_ATTACKS: Dict[str, Callable] = {
    "sat": sat_attack,
    "appsat": appsat_attack,
    "double-dip": double_dip_attack,
    "bmc": bmc_attack,
    "int": int_attack,
    "kc2": kc2_attack,
    "rane": rane_attack,
}


def _cmd_lock(args: argparse.Namespace) -> int:
    circuit = load_bench(args.netlist)
    if args.scheme == "cute-lock-str":
        transform = CuteLockStr(
            num_keys=args.keys, key_width=args.key_width,
            num_locked_ffs=args.locked_ffs, seed=args.seed,
        )
        locked = transform.lock(circuit)
    elif args.scheme == "rll":
        locked = lock_rll(circuit, args.key_width, seed=args.seed)
    elif args.scheme == "sarlock":
        locked = lock_sarlock(circuit, num_key_bits=args.key_width, seed=args.seed)
    elif args.scheme == "ttlock":
        locked = lock_ttlock(circuit, num_key_bits=args.key_width, seed=args.seed)
    elif args.scheme == "harpoon":
        locked = lock_harpoon(circuit, key_width=args.key_width, seed=args.seed)
    elif args.scheme == "dk-lock":
        locked = lock_dklock(circuit, key_width=args.key_width, seed=args.seed)
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(f"unknown scheme {args.scheme}")

    output = Path(args.output or f"{Path(args.netlist).stem}_{args.scheme}.bench")
    save_bench(locked.circuit, output, header=f"locked with {locked.scheme}")
    secret = {
        "scheme": locked.scheme,
        "key_inputs": locked.key_inputs,
        "key_width": locked.key_width,
        "schedule": list(locked.schedule.values),
        "locked_ffs": locked.locked_ffs,
    }
    secret_path = output.with_suffix(".key.json")
    secret_path.write_text(json.dumps(secret, indent=2))
    print(f"locked netlist : {output}")
    print(f"key schedule   : {secret_path}")
    print(f"summary        : {locked.describe()}")
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    locked = load_bench(args.locked)
    oracle = load_bench(args.oracle)
    attack = _ATTACKS[args.attack]
    result = attack(locked, oracle, time_limit=args.time_limit)
    print(result.summary())
    if args.json:
        payload = {
            "attack": result.attack,
            "outcome": result.outcome.value,
            "iterations": result.iterations,
            "runtime_seconds": result.runtime_seconds,
            "key": result.key,
        }
        Path(args.json).write_text(json.dumps(payload, indent=2))
        print(f"result written to {args.json}")
    return 0 if not result.broke_defense else 1


def _cmd_overhead(args: argparse.Namespace) -> int:
    circuit = load_bench(args.netlist)
    cost = analyze_circuit(circuit, activity_vectors=args.vectors)
    print(f"circuit    : {circuit.name}")
    print(f"power (uW) : {cost.power_uw:.2f}")
    print(f"area (um2) : {cost.area_um2:.2f}")
    print(f"cells      : {cost.cell_count}")
    print(f"IOs        : {cost.io_count}")
    print(f"flip-flops : {cost.num_dffs}")
    return 0


def _cmd_benchmarks(args: argparse.Namespace) -> int:
    if args.suite in ("synthezza", "all"):
        print("# Synthezza-style FSM benchmarks (Table III)")
        for name, profile in SYNTHEZZA_PROFILES.items():
            print(f"  {name:10s} group={profile.group:6s} states={profile.num_states:3d} "
                  f"k={profile.num_keys:2d} ki={profile.key_width:2d}")
    if args.suite in ("iscas89", "all"):
        print("# ISCAS'89-style benchmarks (Table IV)")
        for name, profile in ISCAS89_PROFILES.items():
            print(f"  {name:8s} inputs={profile.num_inputs:3d} dffs={profile.num_dffs:3d} "
                  f"k={profile.num_keys:2d} ki={profile.key_width:2d}")
    if args.suite in ("itc99", "all"):
        print("# ITC'99-style benchmarks (Tables IV/V, Figure 4)")
        for name, profile in ITC99_PROFILES.items():
            print(f"  {name:4s} inputs={profile.num_inputs:3d} dffs={profile.num_dffs:3d} "
                  f"k={profile.num_keys:2d} ki={profile.key_width:2d}")
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from repro.experiments import run_all

    run_all(quick=not args.full, attack_time_limit=args.time_limit,
            output_path=args.output)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    lock = sub.add_parser("lock", help="lock a .bench netlist")
    lock.add_argument("netlist")
    lock.add_argument("--scheme", default="cute-lock-str",
                      choices=["cute-lock-str", "rll", "sarlock", "ttlock",
                               "harpoon", "dk-lock"])
    lock.add_argument("--keys", type=int, default=4, help="number of key values (k)")
    lock.add_argument("--key-width", type=int, default=2, help="bits per key value (ki)")
    lock.add_argument("--locked-ffs", type=int, default=1)
    lock.add_argument("--seed", type=int, default=0)
    lock.add_argument("--output")
    lock.set_defaults(func=_cmd_lock)

    attack = sub.add_parser("attack", help="attack a locked .bench netlist")
    attack.add_argument("locked")
    attack.add_argument("oracle")
    attack.add_argument("--attack", default="sat", choices=sorted(_ATTACKS))
    attack.add_argument("--time-limit", type=float, default=60.0)
    attack.add_argument("--json", help="write the result as JSON to this path")
    attack.set_defaults(func=_cmd_attack)

    overhead = sub.add_parser("overhead", help="report 45nm-model cost of a netlist")
    overhead.add_argument("netlist")
    overhead.add_argument("--vectors", type=int, default=64)
    overhead.set_defaults(func=_cmd_overhead)

    benches = sub.add_parser("benchmarks", help="list bundled benchmark suites")
    benches.add_argument("--suite", default="all",
                         choices=["all", "synthezza", "iscas89", "itc99"])
    benches.set_defaults(func=_cmd_benchmarks)

    reproduce = sub.add_parser("reproduce", help="regenerate the paper's evaluation")
    reproduce.add_argument("--full", action="store_true")
    reproduce.add_argument("--time-limit", type=float, default=20.0)
    reproduce.add_argument("--output", default="experiments_report.md")
    reproduce.set_defaults(func=_cmd_reproduce)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - module entry point
    sys.exit(main())
