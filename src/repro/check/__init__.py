"""Static analysis, state sanitizers and certificates for unchecked invariants.

Four analyzers, one per invariant the test suite cannot enforce globally
(documented in ``CHECKS.md``, driven by ``python -m repro check``):

* :mod:`repro.check.lint` — an AST linter over ``src/``, ``tests/`` and
  ``benchmarks/`` with repo-specific rules: no wall-clock / unseeded-random
  calls in byte-identity-critical modules, no raw ``json.loads``-per-line
  loops outside :mod:`repro.jsonutil`, no tracing or allocation-heavy calls
  inside loops marked ``# hot-loop``, ``to_dict``/``from_dict`` round-trip
  completeness, and no silently-swallowed broad exception handlers.
* :mod:`repro.check.program` — a verifier proving every exec-generated
  engine kernel is a straight-line, levelized, bitwise-only program before
  it is executed (always-on in the tests; opt-in at runtime via
  ``REPRO_CHECK_KERNELS=1``).
* :mod:`repro.check.solver` — CNF well-formedness checks plus CDCL state
  sanitizers (watch lists, trail/level consistency, implication-graph
  acyclicity) for both session backends, run at decision points under
  ``REPRO_CHECK_SOLVER=1``.
* :mod:`repro.check.certify` — machine-checkable certificates: DRUP proof
  logging for every UNSAT solver answer, an independent RUP proof checker
  that shares no code with the solvers, and SAT-based translation
  validation of the packed-kernel compiler
  (:mod:`repro.check.certify.equiv`, imported lazily — it pulls in the
  engine stack).
"""

from repro.check.certify import (
    DimacsError,
    DimacsFile,
    ProofError,
    ProofLogger,
    ProofStats,
    RupChecker,
    check_certificate,
    check_proof_lines,
    load_dimacs,
    parse_dimacs,
    write_certificate,
)
from repro.check.lint import (
    ALLOWLIST,
    Finding,
    RULES,
    lint_paths,
    lint_source,
    render_findings,
)
from repro.check.program import (
    KernelVerificationError,
    verify_compiled,
    verify_kernel_source,
    verify_packed_words,
)
from repro.check.solver import (
    SolverStateError,
    Violation,
    assert_cnf_ok,
    assert_solver_invariants,
    check_cnf,
    check_solver_invariants,
)

__all__ = [
    "DimacsError",
    "DimacsFile",
    "ProofError",
    "ProofLogger",
    "ProofStats",
    "RupChecker",
    "check_certificate",
    "check_proof_lines",
    "load_dimacs",
    "parse_dimacs",
    "write_certificate",
    "ALLOWLIST",
    "Finding",
    "RULES",
    "lint_paths",
    "lint_source",
    "render_findings",
    "KernelVerificationError",
    "verify_compiled",
    "verify_kernel_source",
    "verify_packed_words",
    "SolverStateError",
    "Violation",
    "assert_cnf_ok",
    "assert_solver_invariants",
    "check_cnf",
    "check_solver_invariants",
]
