"""Machine-checkable certificates for the solver and the kernel compiler.

Every attack-loop termination and every "key is correct" verdict rests on an
UNSAT answer from a hand-rolled CDCL, and every oracle query rests on
exec-generated kernels.  This subpackage makes both claims *checkable*
(documented in ``CHECKS.md``):

* :mod:`repro.check.certify.proof` — DRUP proof logging: a
  :class:`~repro.check.certify.proof.ProofLogger` both CDCL backends feed
  their learned/deleted clauses into, plus the certificate writer that pairs
  each UNSAT answer with a DIMACS CNF (assumptions appended as unit clauses)
  and a standard DRUP proof file.
* :mod:`repro.check.certify.drup` — an independent pure-python RUP checker
  that replays a proof against the original CNF with its own watched-literal
  propagation.  It shares **no** code with the solvers: a bug would have to
  be made twice, independently, to go unnoticed.
* :mod:`repro.check.certify.dimacs` — standard multi-line DIMACS CNF
  reading, shared by ``repro check cnf`` and ``repro check proof``.
* :mod:`repro.check.certify.equiv` — SAT-based translation validation of the
  packed-kernel compiler: the generated kernel AST is Tseitin-encoded and
  proven equivalent to the netlist semantics bit by bit, with the miter
  UNSAT answers themselves DRUP-certified and re-checked (imported lazily —
  it pulls in the engine and session stacks).

``repro check proof CNF PROOF`` and ``repro check equiv`` are the CLI
entry points; ``repro attack --certify DIR`` arms proof logging end to end.
"""

from repro.check.certify.dimacs import DimacsError, DimacsFile, load_dimacs, parse_dimacs
from repro.check.certify.drup import (
    ProofError,
    ProofStats,
    RupChecker,
    check_certificate,
    check_proof_lines,
)
from repro.check.certify.proof import ProofLogger, write_certificate

__all__ = [
    "DimacsError",
    "DimacsFile",
    "load_dimacs",
    "parse_dimacs",
    "ProofError",
    "ProofStats",
    "RupChecker",
    "check_certificate",
    "check_proof_lines",
    "ProofLogger",
    "write_certificate",
]
