"""Standard DIMACS CNF reading.

`repro.sat.cnf.CNF.from_dimacs` deliberately mirrors `to_dimacs` (one
clause per line) because it round-trips our own files.  External instances
— and the certificate CNFs written next to DRUP proofs — follow the
*standard* format: clauses are token streams terminated by ``0`` that may
span lines or share one, with ``c`` comments, an optional ``p cnf V C``
header, and the ``%``/``0`` trailer some benchmark suites append.  This
module parses that dialect; ``repro check cnf`` and ``repro check proof``
both read through it.

No imports from the rest of `repro` — the certify core stays dependency-free
so the checker cannot inherit a solver bug.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

__all__ = ["DimacsError", "DimacsFile", "parse_dimacs", "load_dimacs", "render_dimacs"]


class DimacsError(ValueError):
    """A DIMACS file that cannot be parsed; carries ``path`` and ``line``."""

    def __init__(self, path: str, line: int, message: str) -> None:
        self.path = path
        self.line = line
        self.message = message
        super().__init__(f"{path}:{line}: {message}")


@dataclass
class DimacsFile:
    """A parsed DIMACS CNF: clauses plus whatever the header declared."""

    clauses: List[Tuple[int, ...]] = field(default_factory=list)
    header_vars: Optional[int] = None
    header_clauses: Optional[int] = None

    @property
    def num_vars(self) -> int:
        """Variable count: the header's, or the largest variable seen."""
        seen = 0
        for clause in self.clauses:
            for lit in clause:
                if abs(lit) > seen:
                    seen = abs(lit)
        if self.header_vars is None:
            return seen
        return max(self.header_vars, seen)


def parse_dimacs(text: str, *, path: str = "<dimacs>", strict: bool = False) -> DimacsFile:
    """Parse standard DIMACS CNF text.

    Lenient by default: a missing header, a header/clause-count mismatch and
    out-of-header-range variables are all tolerated (``check cnf`` reports
    those as violations with better context).  ``strict=True`` additionally
    requires a ``p cnf`` header before any clause and rejects a trailing
    unterminated clause — the contract certificate CNFs are written to.
    """
    parsed = DimacsFile()
    pending: List[int] = []
    pending_line = 0
    saw_header = False
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("%"):  # benchmark-suite trailer: ends the file
            break
        if line.startswith("p"):
            fields = line.split()
            if len(fields) != 4 or fields[1] != "cnf":
                raise DimacsError(path, lineno, f"malformed header {line!r} (expected 'p cnf VARS CLAUSES')")
            if saw_header:
                raise DimacsError(path, lineno, "duplicate 'p cnf' header")
            try:
                parsed.header_vars = int(fields[2])
                parsed.header_clauses = int(fields[3])
            except ValueError:
                raise DimacsError(path, lineno, f"non-numeric header counts in {line!r}") from None
            if parsed.header_vars < 0 or parsed.header_clauses < 0:
                raise DimacsError(path, lineno, f"negative header counts in {line!r}")
            saw_header = True
            continue
        if strict and not saw_header:
            raise DimacsError(path, lineno, "clause before 'p cnf' header")
        for token in line.split():
            try:
                lit = int(token)
            except ValueError:
                raise DimacsError(path, lineno, f"unparseable token {token!r}") from None
            if lit == 0:
                parsed.clauses.append(tuple(pending))
                pending = []
                pending_line = 0
            else:
                if not pending:
                    pending_line = lineno
                pending.append(lit)
    if pending:
        if strict:
            raise DimacsError(path, pending_line, "clause is never terminated by 0")
        parsed.clauses.append(tuple(pending))
    return parsed


def load_dimacs(path: str, *, strict: bool = False) -> DimacsFile:
    """Read and parse a DIMACS CNF file (raises OSError / DimacsError)."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    return parse_dimacs(text, path=str(path), strict=strict)


def render_dimacs(clauses: Sequence[Sequence[int]], num_vars: int) -> str:
    """Render clauses as standard DIMACS text (one clause per line)."""
    lines = [f"p cnf {num_vars} {len(clauses)}"]
    for clause in clauses:
        lines.append(" ".join(str(lit) for lit in clause) + " 0")
    return "\n".join(lines) + "\n"
