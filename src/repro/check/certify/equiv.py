"""SAT-based translation validation of the packed-kernel compiler.

:mod:`repro.check.program` proves a generated kernel is *structurally*
well-formed (straight-line, levelized, bitwise-only) but says nothing about
whether it computes the circuit.  This module proves that, per bit:

1. the netlist semantics are Tseitin-encoded into a reference CNF (the same
   :class:`~repro.sat.tseitin.TseitinEncoder` every attack trusts);
2. the generated kernel source — the byte-for-byte
   :func:`~repro.engine.compiler.kernel_sources` text the engine execs — is
   parsed back to an AST and encoded into the *same* variable space under
   1-bit Boolean lane semantics (``mask`` is the true constant, ``~`` is
   complement, ``&``/``|``/``^`` get fresh gate variables), sharing only
   the source variables (primary inputs and flip-flop Q pins);
3. for every primary output and every next-state (DFF D) bit, a miter
   asserting the two encodings differ is proven UNSAT.

A SAT miter is a real codegen bug and comes with a counterexample input
assignment.  The UNSAT answers are themselves DRUP-certified and replayed
through the independent checker (:mod:`repro.check.certify.drup`) by
default, so the validator is self-certifying end to end.

Scope note: the 1-bit Boolean model treats ``~`` as complement-within-mask,
which is exactly the compiler's contract for mask-confined words.  Word
*confinement* itself (no op leaking bits past the lane width) is the job of
:func:`repro.check.program.verify_packed_words`, which stays armed under
``REPRO_CHECK_KERNELS=1``.
"""

from __future__ import annotations

import ast
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.check.certify.drup import check_certificate
from repro.check.program import verify_compiled
from repro.engine.compiler import CompiledCircuit, compile_circuit, kernel_sources
from repro.netlist.circuit import Circuit
from repro.sat.session import DEFAULT_BACKEND, SolveSession

__all__ = [
    "BitMismatch",
    "EquivalenceReport",
    "validate_compiled",
    "validate_circuit",
    "fixture_names",
    "load_fixture",
]


@dataclass
class BitMismatch:
    """One output/next-state bit where kernel and netlist disagree."""

    kind: str  # "output" or "next-state"
    name: str  # output net, or the DFF Q net whose D bit diverged
    counterexample: Dict[str, int]  # input + current-state assignment

    def render(self) -> str:
        witness = " ".join(
            f"{net}={value}" for net, value in sorted(self.counterexample.items())
        )
        return f"{self.kind} {self.name!r} diverges under {{{witness}}}"


@dataclass
class EquivalenceReport:
    """Result of validating one compiled circuit."""

    circuit: str
    backend: str
    bits_total: int = 0
    mismatches: List[BitMismatch] = field(default_factory=list)
    certificates: int = 0
    proofs_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def render(self) -> str:
        if self.ok:
            checked = (
                f", {self.proofs_checked} miter proof(s) re-checked"
                if self.proofs_checked
                else ""
            )
            return (
                f"{self.circuit}: kernel == netlist on all {self.bits_total} "
                f"bit(s) [{self.backend}]{checked}"
            )
        lines = [
            f"{self.circuit}: {len(self.mismatches)} of {self.bits_total} "
            f"bit(s) DIVERGE [{self.backend}]"
        ]
        lines.extend("  " + mismatch.render() for mismatch in self.mismatches)
        return "\n".join(lines)


# --------------------------------------------------------------------------- #
# kernel AST -> CNF under 1-bit lane semantics
# --------------------------------------------------------------------------- #
def _encode_expr(cnf, true_lit: int, slot_lit: Dict[int, int], node: ast.expr) -> int:
    """Encode one kernel expression, returning the literal of its value."""
    if isinstance(node, ast.Name):  # only `mask` survives verification
        return true_lit
    if isinstance(node, ast.Constant):  # only the literal 0 survives
        return -true_lit
    if isinstance(node, ast.Subscript):
        return slot_lit[node.slice.value]  # type: ignore[attr-defined]
    if isinstance(node, ast.UnaryOp):  # ~x == mask ^ x == Boolean NOT
        return -_encode_expr(cnf, true_lit, slot_lit, node.operand)
    if isinstance(node, ast.BinOp):
        a = _encode_expr(cnf, true_lit, slot_lit, node.left)
        b = _encode_expr(cnf, true_lit, slot_lit, node.right)
        out = cnf.new_var()
        if isinstance(node.op, ast.BitAnd):
            cnf.add_clause([-out, a])
            cnf.add_clause([-out, b])
            cnf.add_clause([out, -a, -b])
        elif isinstance(node.op, ast.BitOr):
            cnf.add_clause([out, -a])
            cnf.add_clause([out, -b])
            cnf.add_clause([-out, a, b])
        elif isinstance(node.op, ast.BitXor):
            cnf.add_clause([-out, a, b])
            cnf.add_clause([-out, -a, -b])
            cnf.add_clause([out, -a, b])
            cnf.add_clause([out, a, -b])
        else:  # pragma: no cover - excluded by verify_compiled
            raise ValueError(f"non-bitwise operator {type(node.op).__name__}")
        return out
    raise ValueError(  # pragma: no cover - excluded by verify_compiled
        f"node {type(node).__name__} is not kernel-encodable"
    )


def _encode_kernel_source(
    cnf, true_lit: int, slot_lit: Dict[int, int], source: str
) -> None:
    """Encode one verified kernel chunk's assignments into ``slot_lit``."""
    func = ast.parse(source).body[0]
    for stmt in func.body:  # type: ignore[attr-defined]
        if isinstance(stmt, ast.Pass):
            continue
        slot = stmt.targets[0].slice.value  # type: ignore[attr-defined]
        slot_lit[slot] = _encode_expr(cnf, true_lit, slot_lit, stmt.value)


# --------------------------------------------------------------------------- #
# the validator
# --------------------------------------------------------------------------- #
def validate_compiled(
    compiled: CompiledCircuit,
    *,
    backend: str = DEFAULT_BACKEND,
    proof_dir: Optional[Union[str, Path]] = None,
    check_proofs: bool = True,
    label: Optional[str] = None,
) -> EquivalenceReport:
    """Prove a compiled circuit's kernels equivalent to its netlist.

    Runs :func:`repro.check.program.verify_compiled` first (the structural
    whitelist is what makes the AST encoding total), then proves each
    output and next-state bit with an assumption-scoped miter.  With
    ``check_proofs`` (the default) every miter UNSAT is DRUP-certified and
    replayed through the independent checker; pass ``proof_dir`` to keep
    the certificate pairs, otherwise they live in a temporary directory.
    """
    name = label or compiled.circuit.name
    verify_compiled(compiled)
    report = EquivalenceReport(circuit=name, backend=backend)
    with tempfile.TemporaryDirectory(prefix="repro-equiv-") as tmp:
        certify = check_proofs or proof_dir is not None
        session = SolveSession(
            backend,
            proof_path=(proof_dir if proof_dir is not None else tmp) if certify else None,
            proof_label=f"equiv-{name}",
        )
        encoder = session.encoder
        encoder.encode(compiled.circuit)
        cnf = encoder.cnf

        true_lit = cnf.new_var()
        cnf.add_clause([true_lit])
        slot_lit: Dict[int, int] = {}
        for slot in compiled.input_slots:
            slot_lit[slot] = encoder.var(compiled.net_names[slot])
        for q_net, slot, _init in compiled.state_items:
            slot_lit[slot] = encoder.var(q_net)
        for _start, source in kernel_sources(compiled.ops):
            _encode_kernel_source(cnf, true_lit, slot_lit, source)

        witness_nets = list(compiled.circuit.inputs) + [
            q for q, _slot, _init in compiled.state_items
        ]
        targets: List[Tuple[str, str, int, int]] = []
        for slot in compiled.output_slots:
            net = compiled.net_names[slot]
            targets.append(("output", net, encoder.var(net), slot_lit[slot]))
        for q_net, d_slot in compiled.dff_d_slots:
            d_net = compiled.circuit.dffs[q_net].d
            targets.append(("next-state", q_net, encoder.var(d_net), slot_lit[d_slot]))

        for kind, bit_name, ref_lit, kernel_lit in targets:
            report.bits_total += 1
            diff = cnf.new_var()
            cnf.add_clause([-diff, ref_lit, kernel_lit])
            cnf.add_clause([-diff, -ref_lit, -kernel_lit])
            cnf.add_clause([diff, -ref_lit, kernel_lit])
            cnf.add_clause([diff, ref_lit, -kernel_lit])
            answer = session.solve([diff], phase="equiv")
            if answer is True:
                model = session.model()
                counterexample = {
                    net: model.get(encoder.varmap[net], 0) for net in witness_nets
                }
                report.mismatches.append(BitMismatch(kind, bit_name, counterexample))
            elif answer is None:  # pragma: no cover - no budgets are set
                raise RuntimeError(
                    f"equivalence miter for {kind} {bit_name!r} hit a solver budget"
                )

        report.certificates = len(session.certificates)
        if check_proofs:
            for cnf_path, proof_path in session.certificates:
                # A ProofError here is fatal on purpose: the solver said
                # UNSAT but its own proof does not replay.
                check_certificate(cnf_path, proof_path)
                report.proofs_checked += 1
    return report


def validate_circuit(circuit: Circuit, **kwargs) -> EquivalenceReport:
    """Compile (without exec) and validate a circuit; see :func:`validate_compiled`."""
    compiled = compile_circuit(circuit, codegen=False)
    return validate_compiled(compiled, **kwargs)


# --------------------------------------------------------------------------- #
# bundled fixtures (the `repro check equiv --all-fixtures` set)
# --------------------------------------------------------------------------- #
def fixture_names() -> List[str]:
    """Names of every bundled circuit fixture (ISCAS'89 + ITC'99 profiles)."""
    from repro.benchmarks_data.iscas89 import iscas89_names
    from repro.benchmarks_data.itc99 import itc99_names

    return list(iscas89_names()) + list(itc99_names())


def load_fixture(name: str) -> Circuit:
    """Load a bundled fixture by name (raises KeyError for unknown names)."""
    from repro.benchmarks_data.iscas89 import ISCAS89_PROFILES, load_iscas89
    from repro.benchmarks_data.itc99 import ITC99_PROFILES, load_itc99

    if name in ISCAS89_PROFILES:
        loaded = load_iscas89(name)
    elif name in ITC99_PROFILES:
        loaded = load_itc99(name)
    else:
        raise KeyError(
            f"unknown fixture {name!r}; known fixtures: {', '.join(fixture_names())}"
        )
    return getattr(loaded, "circuit", loaded)
