"""DRUP proof logging and certificate emission.

A DRUP (Delete Reverse Unit Propagation) proof is a text file with one
step per line:

* ``l1 l2 ... 0`` — the solver claims clause ``(l1 ∨ l2 ∨ ...)`` follows
  from the formula plus all earlier additions, checkable by reverse unit
  propagation;
* ``d l1 l2 ... 0`` — the solver will never use that clause again (lets
  the checker drop it, keeping replay cost proportional to the solver's
  live clause database once clause-DB reduction lands);
* a final ``0`` — the empty clause: the formula is UNSAT.

Both CDCL backends carry a ``proof`` attribute (``None`` when disarmed —
the same zero-cost pattern as the trace hooks) pointing at a
:class:`ProofLogger`.  `SolveSession` owns the logger and, on each UNSAT
answer, writes a *certificate pair*: the CNF it actually solved (original
clauses plus the query's assumptions appended as unit clauses, so an
assumption-scoped UNSAT becomes a plain UNSAT of the certificate formula)
and the DRUP proof.  ``repro check proof`` replays the pair with the
independent checker in :mod:`repro.check.certify.drup`.

This module imports nothing from `repro.sat` — the logging/writing side
stays dependency-free, mirroring the checker.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.check.certify.dimacs import render_dimacs

__all__ = ["ProofLogger", "render_proof", "write_certificate"]


class ProofLogger:
    """Collects DRUP steps emitted by a solver backend.

    Steps accumulate across incremental `solve()` calls on purpose: a
    clause learned in query N is part of the solver's database for query
    N+1, so a later certificate must replay it.  `reset()` matches
    `SolveSession.reset_solver()`, which discards all learned clauses.
    """

    __slots__ = ("steps",)

    def __init__(self) -> None:
        self.steps: List[Tuple[str, Tuple[int, ...]]] = []

    def learned(self, literals: Iterable[int]) -> None:
        """Record a clause addition (a learned clause, RUP by construction)."""
        self.steps.append(("", tuple(literals)))

    def deleted(self, literals: Iterable[int]) -> None:
        """Record a clause deletion (clause-DB reduction / minimization)."""
        self.steps.append(("d", tuple(literals)))

    def reset(self) -> None:
        del self.steps[:]

    def __len__(self) -> int:
        return len(self.steps)


def render_proof(steps: Sequence[Tuple[str, Sequence[int]]]) -> str:
    """Render logged steps as DRUP text, ending with the empty clause."""
    lines = []
    for kind, literals in steps:
        body = " ".join(str(lit) for lit in literals)
        if kind == "d":
            lines.append(f"d {body} 0" if body else "d 0")
        else:
            lines.append(f"{body} 0" if body else "0")
    lines.append("0")
    return "\n".join(lines) + "\n"


def write_certificate(
    cnf_path,
    proof_path,
    clauses: Sequence[Sequence[int]],
    num_vars: int,
    *,
    assumptions: Sequence[int] = (),
    steps: Sequence[Tuple[str, Sequence[int]]] = (),
) -> None:
    """Write a certificate pair for one UNSAT answer.

    The assumptions under which the solver reported UNSAT become unit
    clauses of the certificate CNF: the solver proved F ∧ a1 ∧ ... ∧ ak
    unsatisfiable, and that conjunction *is* the certificate formula, so
    the proof file stays pure standard DRUP.
    """
    cert_clauses: List[Sequence[int]] = list(clauses)
    cert_vars = num_vars
    for lit in assumptions:
        cert_clauses.append((lit,))
        if abs(lit) > cert_vars:
            cert_vars = abs(lit)
    with open(cnf_path, "w", encoding="utf-8") as handle:
        handle.write(render_dimacs(cert_clauses, cert_vars))
    with open(proof_path, "w", encoding="utf-8") as handle:
        handle.write(render_proof(steps))
