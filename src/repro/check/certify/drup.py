"""An independent DRUP proof checker.

Replays a DRUP proof against the original CNF and accepts it only if every
clause addition is RUP — assuming the negation of the added clause, unit
propagation over the formula plus all earlier (undeleted) additions must
reach a conflict — and the proof derives the empty clause.  Anything else
raises :class:`ProofError` with the offending proof line number.

This checker shares **no** code with `repro.sat`: it has its own literal
encoding conventions, its own two-watched-literal propagation, its own
trail.  That independence is the point — a soundness bug in the solvers
cannot silently vindicate its own proofs, because the same mistake would
have to be reimplemented here from a different design.

Deletion semantics follow drat-trim: a ``d`` line must name a clause that
is present (a bogus deletion is an error — the solver claimed to delete
something it never had), but deletions of unit clauses and of clauses that
are currently the *reason* for a root-level propagation are ignored rather
than honored, because their consequences are already on the trail and
cannot be unwound.  Ignoring a deletion is sound: every clause the checker
keeps is entailed by the original formula (it is an original clause or a
verified RUP addition), so any conflict unit propagation finds over the
kept set is still a genuine refutation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.check.certify.dimacs import load_dimacs

__all__ = ["ProofError", "ProofStats", "RupChecker", "check_proof_lines", "check_certificate"]


class ProofError(Exception):
    """A proof that does not verify; carries ``path`` and ``line``."""

    def __init__(self, path: str, line: int, message: str) -> None:
        self.path = path
        self.line = line
        self.message = message
        super().__init__(f"{path}:{line}: {message}")


@dataclass
class ProofStats:
    """What a successful replay did."""

    additions: int = 0
    deletions: int = 0
    deletions_ignored: int = 0
    original_clauses: int = 0
    num_vars: int = 0

    def render(self) -> str:
        return (
            f"{self.additions} addition(s), {self.deletions} deletion(s) "
            f"({self.deletions_ignored} ignored), over {self.original_clauses} "
            f"original clause(s) and {self.num_vars} variable(s)"
        )


def _clause_text(literals: Sequence[int]) -> str:
    if not literals:
        return "<empty>"
    return "(" + " ".join(str(lit) for lit in literals) + ")"


class RupChecker:
    """Replays DRUP steps over a clause database with watched-literal UP.

    Assignments live in ``_assign`` (1 true, -1 false, 0 unassigned, indexed
    by variable); the trail holds root-level consequences permanently and
    per-step assumption consequences transiently (rolled back after each RUP
    check).  Clauses are stored once and indexed by a sorted-literal key so
    deletions can find them regardless of literal order in the ``d`` line.
    """

    def __init__(self, clauses: Iterable[Sequence[int]], num_vars: int = 0) -> None:
        self._assign: List[int] = []
        self._reason: List[int] = []  # var -> clause id, or -1
        self._trail: List[int] = []
        self._qhead = 0
        self._clauses: List[Optional[List[int]]] = []
        self._by_key: Dict[Tuple[int, ...], List[int]] = {}
        self._contradiction = False
        self.stats = ProofStats()
        self._ensure_vars(num_vars)
        self._watches: Dict[int, List[int]] = {}
        for clause in clauses:
            self.stats.original_clauses += 1
            self._install(clause)
        self.stats.num_vars = len(self._assign) - 1 if self._assign else 0

    # ------------------------------------------------------------------
    # assignment plumbing

    def _ensure_vars(self, num_vars: int) -> None:
        while len(self._assign) <= num_vars:
            self._assign.append(0)
            self._reason.append(-1)

    def _value(self, lit: int) -> int:
        assigned = self._assign[abs(lit)]
        if assigned == 0:
            return 0
        return assigned if lit > 0 else -assigned

    def _enqueue(self, lit: int, reason: int) -> None:
        var = abs(lit)
        self._assign[var] = 1 if lit > 0 else -1
        self._reason[var] = reason
        self._trail.append(lit)

    def _propagate(self) -> bool:
        """Unit-propagate from the current queue head; True on conflict."""
        while self._qhead < len(self._trail):
            lit = self._trail[self._qhead]
            self._qhead += 1
            watching = self._watches.get(-lit)
            if not watching:
                continue
            i = 0
            while i < len(watching):
                cid = watching[i]
                clause = self._clauses[cid]
                if clause is None:  # deleted; compact lazily
                    watching[i] = watching[-1]
                    watching.pop()
                    continue
                if clause[0] == -lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) == 1:
                    i += 1
                    continue
                for k in range(2, len(clause)):
                    if self._value(clause[k]) != -1:
                        clause[1], clause[k] = clause[k], clause[1]
                        self._watches.setdefault(clause[1], []).append(cid)
                        watching[i] = watching[-1]
                        watching.pop()
                        break
                else:
                    if self._value(first) == -1:
                        self._qhead = len(self._trail)
                        return True
                    self._enqueue(first, cid)
                    i += 1
        return False

    # ------------------------------------------------------------------
    # clause database

    def _install(self, literals: Sequence[int]) -> None:
        """Add a clause (original or verified addition) and propagate."""
        if self._contradiction:
            return
        lits: List[int] = []
        seen = set()
        tautology = False
        for lit in literals:
            if -lit in seen:
                tautology = True
            if lit not in seen:
                seen.add(lit)
                lits.append(lit)
            self._ensure_vars(abs(lit))
        cid = len(self._clauses)
        self._clauses.append(lits)
        self._by_key.setdefault(tuple(sorted(lits)), []).append(cid)
        if tautology:
            # Always satisfied: never watched, can never propagate.
            return
        if not lits:
            self._contradiction = True
            return
        if len(lits) == 1:
            value = self._value(lits[0])
            if value == -1:
                self._contradiction = True
            elif value == 0:
                self._enqueue(lits[0], cid)
                self._contradiction = self._propagate()
            return
        # Pick two non-false literals to watch; fewer means the clause is
        # already unit or conflicting at the root.
        free = [k for k, lit in enumerate(lits) if self._value(lit) != -1]
        if not free:
            self._contradiction = True
            return
        lits[0], lits[free[0]] = lits[free[0]], lits[0]
        if len(free) == 1:
            self._watches.setdefault(lits[0], []).append(cid)
            self._watches.setdefault(lits[1], []).append(cid)
            if self._value(lits[0]) == 0:
                self._enqueue(lits[0], cid)
                self._contradiction = self._propagate()
            return
        swap = free[1] if free[1] != 0 else 1
        lits[1], lits[swap] = lits[swap], lits[1]
        self._watches.setdefault(lits[0], []).append(cid)
        self._watches.setdefault(lits[1], []).append(cid)

    def is_rup(self, literals: Sequence[int]) -> bool:
        """True iff the clause follows by reverse unit propagation."""
        if self._contradiction:
            return True
        for lit in literals:
            self._ensure_vars(abs(lit))  # proofs may introduce fresh variables
        mark = len(self._trail)
        conflict = False
        for lit in literals:
            value = self._value(lit)
            if value == 1:
                conflict = True  # negating a root-true literal
                break
            if value == 0 and self._value(-lit) == 0:
                self._enqueue(-lit, -1)
        if not conflict:
            conflict = self._propagate()
        for lit in self._trail[mark:]:
            var = abs(lit)
            self._assign[var] = 0
            self._reason[var] = -1
        del self._trail[mark:]
        self._qhead = mark
        return conflict

    def add(self, literals: Sequence[int], *, path: str = "<proof>", line: int = 0) -> None:
        """Verify an addition by RUP and install it; raises ProofError."""
        if not self.is_rup(literals):
            raise ProofError(
                path,
                line,
                f"clause {_clause_text(literals)} is not RUP: assuming its negation, "
                "unit propagation reaches no conflict",
            )
        self.stats.additions += 1
        if literals:
            self._install(literals)
        else:
            self._contradiction = True

    def delete(self, literals: Sequence[int], *, path: str = "<proof>", line: int = 0) -> None:
        """Honor a deletion (drat-trim semantics); raises ProofError if absent."""
        if self._contradiction:
            # Past a root conflict additions are no longer installed, so
            # deletions can no longer be matched up — and no longer matter.
            self.stats.deletions += 1
            self.stats.deletions_ignored += 1
            return
        lits: List[int] = []
        seen = set()
        for lit in literals:
            if lit not in seen:
                seen.add(lit)
                lits.append(lit)
        key = tuple(sorted(lits))
        cids = self._by_key.get(key)
        if not cids:
            raise ProofError(
                path,
                line,
                f"deletion of clause {_clause_text(literals)} which is not in the database",
            )
        cid = cids.pop()
        if not cids:
            del self._by_key[key]
        self.stats.deletions += 1
        clause = self._clauses[cid]
        locked = clause is not None and any(
            self._reason[abs(lit)] == cid for lit in clause
        )
        if clause is None or len(clause) <= 1 or locked:
            # Unit clauses and root-propagation reasons stay: their
            # consequences are already on the trail and cannot be unwound.
            self.stats.deletions_ignored += 1
            return
        self._clauses[cid] = None  # watch lists compact lazily

    @property
    def contradiction(self) -> bool:
        return self._contradiction


def check_proof_lines(
    clauses: Iterable[Sequence[int]],
    proof_lines: Iterable[str],
    *,
    num_vars: int = 0,
    path: str = "<proof>",
) -> ProofStats:
    """Replay DRUP ``proof_lines`` against ``clauses``; raises ProofError.

    Returns the replay statistics on success.  Success requires every
    addition to be RUP, every deletion to name a present clause, and the
    proof to derive the empty clause before the file ends.
    """
    checker = RupChecker(clauses, num_vars)
    lineno = 0
    for lineno, raw in enumerate(proof_lines, 1):
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        tokens = line.split()
        deletion = tokens[0] == "d"
        if deletion:
            tokens = tokens[1:]
            if not tokens:
                raise ProofError(path, lineno, "deletion line with no literals")
        try:
            numbers = [int(token) for token in tokens]
        except ValueError:
            raise ProofError(path, lineno, f"unparseable proof line {line!r}") from None
        if numbers[-1] != 0:
            raise ProofError(path, lineno, "proof line does not end with 0")
        literals = numbers[:-1]
        if any(lit == 0 for lit in literals):
            raise ProofError(path, lineno, "literal 0 in the middle of a proof line")
        if deletion:
            if not literals:
                raise ProofError(path, lineno, "deletion of the empty clause")
            checker.delete(literals, path=path, line=lineno)
        else:
            checker.add(literals, path=path, line=lineno)
            if not literals:
                return checker.stats
    raise ProofError(
        path,
        lineno + 1,
        "proof ends without deriving the empty clause (truncated proof, or the "
        "instance is not UNSAT)",
    )


def check_certificate(cnf_path: str, proof_path: str) -> ProofStats:
    """Check a certificate pair from disk; raises DimacsError/ProofError."""
    dimacs = load_dimacs(str(cnf_path))
    with open(proof_path, "r", encoding="utf-8") as handle:
        proof_lines = handle.read().splitlines()
    return check_proof_lines(
        dimacs.clauses,
        proof_lines,
        num_vars=dimacs.num_vars,
        path=str(proof_path),
    )
