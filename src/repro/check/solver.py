"""CNF well-formedness checks and CDCL solver-state sanitizers.

Two layers:

* :func:`check_cnf` — formula-level checks on a :class:`repro.sat.cnf.CNF`
  (or any clause iterable): zero literals, out-of-range variables,
  duplicate literals, tautologies, empty clauses.  These are the malformed
  inputs the encoders must never emit; ``add_clause`` rejects some of them
  but nothing guards hand-built or deserialized clause lists.

* :func:`check_solver_invariants` — a state sanitizer for both CDCL
  backends (:class:`repro.sat.solver.Solver` and
  :class:`repro.sat.arena.ArenaSolver`, distinguished by duck-typing on
  ``_arena``).  It audits the invariants the search relies on but never
  re-checks: watch-list structure (every stored clause watched exactly
  once at each of its two lead literals, nowhere else), trail/assignment/
  decision-level consistency, and the implication graph (every implied
  variable's reason clause contains its literal, with every antecedent
  falsified *earlier* on the trail — which makes the graph acyclic by
  construction).

Both solvers call the sanitizer at every decision point when constructed
under ``REPRO_CHECK_SOLVER=1`` (one attribute test per decision when off);
the solver property tests run a pass with it enabled.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union


@dataclass(frozen=True)
class Violation:
    """One invariant violation: a stable kind slug plus the evidence."""

    kind: str
    message: str

    def render(self) -> str:
        return f"[{self.kind}] {self.message}"


class SolverStateError(AssertionError):
    """Solver or CNF state failed an invariant audit.

    Subclasses :class:`AssertionError` so property tests fail loudly and
    existing ``except Exception`` telemetry paths still record it.
    """

    def __init__(self, context: str, violations: Sequence[Violation]) -> None:
        self.context = context
        self.violations = list(violations)
        detail = "; ".join(v.render() for v in self.violations)
        super().__init__(f"{context}: {detail}")


# --------------------------------------------------------------------- #
# CNF well-formedness
# --------------------------------------------------------------------- #
def check_cnf(
    formula: Union[Iterable[Sequence[int]], "object"],
    *,
    num_vars: Optional[int] = None,
) -> List[Violation]:
    """Audit a formula; returns all violations (empty list when clean).

    ``formula`` may be a :class:`repro.sat.cnf.CNF` (its ``num_vars`` is
    used unless overridden) or any iterable of clauses.
    """
    clauses = getattr(formula, "clauses", formula)
    if num_vars is None:
        num_vars = getattr(formula, "num_vars", None)
    violations: List[Violation] = []
    for index, clause in enumerate(clauses):
        clause = tuple(clause)
        if not clause:
            violations.append(
                Violation("empty-clause", f"clause #{index} is empty")
            )
            continue
        seen = set()
        for lit in clause:
            if lit == 0:
                violations.append(
                    Violation("zero-literal", f"clause #{index} {clause} contains literal 0")
                )
                continue
            var = abs(lit)
            if num_vars is not None and var > num_vars:
                violations.append(
                    Violation(
                        "out-of-range",
                        f"clause #{index} {clause} uses variable {var} > num_vars={num_vars}",
                    )
                )
            if lit in seen:
                violations.append(
                    Violation(
                        "duplicate-literal",
                        f"clause #{index} {clause} repeats literal {lit}",
                    )
                )
            elif -lit in seen:
                violations.append(
                    Violation(
                        "tautology",
                        f"clause #{index} {clause} contains both {lit} and {-lit}",
                    )
                )
            seen.add(lit)
    return violations


def assert_cnf_ok(
    formula,
    *,
    num_vars: Optional[int] = None,
    context: str = "CNF",
) -> None:
    """Raise :class:`SolverStateError` if :func:`check_cnf` finds anything."""
    violations = check_cnf(formula, num_vars=num_vars)
    if violations:
        raise SolverStateError(context, violations)


# --------------------------------------------------------------------- #
# solver-state sanitizer
# --------------------------------------------------------------------- #
def _lit_value(assign: List[int], lit: int) -> int:
    value = assign[lit if lit > 0 else -lit]
    if value == 0:
        return 0
    return value if lit > 0 else -value


def _arena_clauses(solver, violations: List[Violation]) -> Dict[int, Tuple[int, ...]]:
    """Walk the arena; returns ``ref -> literals`` for every stored clause."""
    arena = solver._arena
    clauses: Dict[int, Tuple[int, ...]] = {}
    ref = 0
    while ref < len(arena):
        length = arena[ref]
        if length < 2 or ref + 1 + length > len(arena):
            violations.append(
                Violation(
                    "arena-corrupt",
                    f"arena[{ref}] declares clause length {length} "
                    f"(arena size {len(arena)}); walk aborted",
                )
            )
            return clauses
        clauses[ref] = tuple(arena[ref + 1: ref + 1 + length])
        ref += 1 + length
    return clauses


def _enc_watch(lit: int) -> int:
    """Watch-list index of watched literal ``lit`` (visit when it is falsified)."""
    return (lit << 1 | 1) if lit > 0 else (-lit << 1)


def check_solver_invariants(solver) -> List[Violation]:
    """Audit a CDCL backend's internal state; returns all violations.

    Works on both backends.  Structural checks (watch lists, trail, levels,
    implication graph) run unconditionally; the *semantic* watch invariant
    (a falsified watched literal implies the clause is satisfied by its
    other watch) only holds once propagation has quiesced, so it is gated
    on ``qhead == len(trail)``.
    """
    violations: List[Violation] = []
    is_arena = hasattr(solver, "_arena")
    assign: List[int] = solver._assign
    levels: List[int] = solver._level
    trail: List[int] = solver._trail
    trail_lim: List[int] = solver._trail_lim
    num_vars: int = solver.num_vars

    # ---- clause database + watch structure ---------------------------- #
    clause_map: Dict[int, Tuple[int, ...]]
    if is_arena:
        clause_map = _arena_clauses(solver, violations)
        watch_lists = solver._watches
        occurrences: Dict[Tuple[int, int], int] = {}
        for widx, watching in enumerate(watch_lists):
            if len(watching) % 2:
                violations.append(
                    Violation(
                        "watch-corrupt",
                        f"watch list {widx} has odd length {len(watching)} "
                        "(refs and blockers must pair up)",
                    )
                )
                continue
            for i in range(0, len(watching), 2):
                ref, blocker = watching[i], watching[i + 1]
                if ref not in clause_map:
                    violations.append(
                        Violation(
                            "watch-corrupt",
                            f"watch list {widx} holds ref {ref} which is not "
                            "a clause boundary in the arena",
                        )
                    )
                    continue
                if blocker not in clause_map[ref]:
                    violations.append(
                        Violation(
                            "watch-corrupt",
                            f"watch list {widx}: blocker {blocker} for clause "
                            f"@{ref} is not one of its literals {clause_map[ref]}",
                        )
                    )
                occurrences[(widx, ref)] = occurrences.get((widx, ref), 0) + 1
        expected = set()
        for ref, literals in clause_map.items():
            for watched in literals[:2]:
                widx = _enc_watch(watched)
                expected.add((widx, ref))
                count = occurrences.get((widx, ref), 0)
                if count != 1:
                    violations.append(
                        Violation(
                            "watch-missing" if count == 0 else "watch-duplicate",
                            f"clause @{ref} {literals} watched {count}x at "
                            f"literal {watched} (watch list {widx}), expected "
                            "exactly once",
                        )
                    )
        for (widx, ref), count in occurrences.items():
            if (widx, ref) not in expected and ref in clause_map:
                violations.append(
                    Violation(
                        "watch-stray",
                        f"clause @{ref} {clause_map[ref]} appears {count}x in "
                        f"watch list {widx} but neither of its lead literals "
                        "maps there",
                    )
                )
    else:
        clause_map = {
            index: tuple(clause) for index, clause in enumerate(solver.clauses)
        }
        occurrences = {}
        for key, watching in solver._watches.items():
            for ci in watching:
                if ci not in clause_map:
                    violations.append(
                        Violation(
                            "watch-corrupt",
                            f"watch list for {key} holds clause index {ci} "
                            f"outside the database (size {len(clause_map)})",
                        )
                    )
                    continue
                occurrences[(key, ci)] = occurrences.get((key, ci), 0) + 1
        expected = set()
        for ci, literals in clause_map.items():
            if len(literals) < 2:
                violations.append(
                    Violation(
                        "clause-corrupt",
                        f"stored clause #{ci} {literals} has fewer than two "
                        "literals (units are never stored)",
                    )
                )
                continue
            for watched in literals[:2]:
                key = -watched
                expected.add((key, ci))
                count = occurrences.get((key, ci), 0)
                if count != 1:
                    violations.append(
                        Violation(
                            "watch-missing" if count == 0 else "watch-duplicate",
                            f"clause #{ci} {literals} watched {count}x at "
                            f"literal {watched}, expected exactly once",
                        )
                    )
        for (key, ci), count in occurrences.items():
            if (key, ci) not in expected and ci in clause_map:
                violations.append(
                    Violation(
                        "watch-stray",
                        f"clause #{ci} {clause_map[ci]} appears {count}x in the "
                        f"watch list for {key} but neither watched literal "
                        "maps there",
                    )
                )

    for where, literals in clause_map.items():
        for lit in literals:
            if lit == 0 or abs(lit) > num_vars:
                violations.append(
                    Violation(
                        "clause-corrupt",
                        f"stored clause {where} {literals} holds invalid "
                        f"literal {lit} (num_vars={num_vars})",
                    )
                )

    # ---- trail / assignment / level consistency ----------------------- #
    qhead = solver._qhead
    if not 0 <= qhead <= len(trail):
        violations.append(
            Violation(
                "trail-corrupt",
                f"qhead {qhead} outside the trail (length {len(trail)})",
            )
        )
    previous = 0
    for level_index, boundary in enumerate(trail_lim):
        if boundary < previous or boundary > len(trail):
            violations.append(
                Violation(
                    "trail-corrupt",
                    f"trail_lim[{level_index}] = {boundary} is not monotone "
                    f"within the trail (length {len(trail)})",
                )
            )
        previous = max(previous, boundary)

    position: Dict[int, int] = {}
    for pos, lit in enumerate(trail):
        var = abs(lit)
        if lit == 0 or var > num_vars:
            violations.append(
                Violation("trail-corrupt", f"trail[{pos}] holds invalid literal {lit}")
            )
            continue
        if var in position:
            violations.append(
                Violation(
                    "trail-corrupt",
                    f"variable {var} appears twice on the trail "
                    f"(positions {position[var]} and {pos})",
                )
            )
            continue
        position[var] = pos
        if _lit_value(assign, lit) != 1:
            violations.append(
                Violation(
                    "assign-mismatch",
                    f"trail literal {lit} (position {pos}) is not assigned true",
                )
            )
        expected_level = bisect_right(trail_lim, pos)
        if levels[var] != expected_level:
            violations.append(
                Violation(
                    "level-mismatch",
                    f"variable {var} at trail position {pos} has recorded "
                    f"level {levels[var]} but sits in level {expected_level}",
                )
            )
    for var in range(1, num_vars + 1):
        if assign[var] != 0 and var not in position:
            violations.append(
                Violation(
                    "assign-mismatch",
                    f"variable {var} is assigned {assign[var]:+d} but is not "
                    "on the trail",
                )
            )

    # ---- implication graph -------------------------------------------- #
    reasons = solver._reason
    no_reason = -1 if is_arena else None
    for pos, lit in enumerate(trail):
        var = abs(lit)
        reason = reasons[var] if var < len(reasons) else no_reason
        if reason == no_reason or reason is None:
            continue
        literals = clause_map.get(reason)
        if literals is None:
            violations.append(
                Violation(
                    "reason-corrupt",
                    f"variable {var} cites reason {reason} which is not a "
                    "stored clause",
                )
            )
            continue
        if lit not in literals:
            violations.append(
                Violation(
                    "reason-corrupt",
                    f"reason clause {reason} {literals} does not contain its "
                    f"implied literal {lit}",
                )
            )
            continue
        for other in literals:
            if other == lit:
                continue
            if _lit_value(assign, other) != -1:
                violations.append(
                    Violation(
                        "reason-corrupt",
                        f"antecedent {other} of implied literal {lit} "
                        f"(reason {reason} {literals}) is not falsified",
                    )
                )
                continue
            other_pos = position.get(abs(other))
            if other_pos is None or other_pos >= pos:
                # An antecedent at or after its consequence means the
                # implication graph has a cycle (or cites the future).
                violations.append(
                    Violation(
                        "implication-cycle",
                        f"antecedent {other} of implied literal {lit} "
                        f"(reason {reason}) is not assigned earlier on the "
                        f"trail (positions {other_pos} vs {pos})",
                    )
                )

    # ---- semantic watch invariant (quiescent states only) -------------- #
    if qhead == len(trail):
        for where, literals in clause_map.items():
            if len(literals) < 2:
                continue
            first, second = literals[0], literals[1]
            v1, v2 = _lit_value(assign, first), _lit_value(assign, second)
            if v1 != -1 and v2 != -1:
                continue
            if 1 in (v1, v2):
                continue
            # The arena backend's blocker skip legitimately leaves a stale
            # false watch when the clause is satisfied by a *tail* literal
            # (a blocker-true visit never renormalizes the clause); the
            # reference backend always promotes a true tail literal into
            # the watch pair, so for it a false watch demands a true watch.
            if is_arena and any(
                _lit_value(assign, other) == 1 for other in literals[2:]
            ):
                continue
            if v1 == -1 and v2 == -1:
                message = (
                    f"clause {where} {literals}: both watched literals "
                    f"{first}, {second} are false after propagation "
                    "quiesced and no other literal is true (missed conflict)"
                )
            else:
                message = (
                    f"clause {where} {literals}: watched literal "
                    f"{first if v1 == -1 else second} is false with the "
                    "clause unsatisfied (missed unit propagation)"
                )
            violations.append(Violation("watch-falsified", message))

    return violations


def assert_solver_invariants(solver, *, context: Optional[str] = None) -> None:
    """Raise :class:`SolverStateError` if the sanitizer finds anything."""
    violations = check_solver_invariants(solver)
    if violations:
        if context is None:
            context = type(solver).__name__
        raise SolverStateError(context, violations)
