"""AST linter enforcing repo-specific invariants over ``src/``.

The rules encode invariants no pytest run checks globally — mostly the
byte-identity contract of the campaign/report path (a merged sharded sweep
must reproduce the serial report byte-for-byte) and the cost discipline of
the solver/engine hot loops:

====== ===================== =====================================================
ID     slug                  invariant
====== ===================== =====================================================
R001   wall-clock            no ``time.time()`` / ``datetime.now()`` (or kin)
                             in byte-identity-critical modules
R002   unseeded-random       no module-level ``random.*`` (the shared unseeded
                             RNG) in byte-identity-critical modules
R003   raw-jsonl-loop        no ``json.loads`` inside a loop outside
                             :mod:`repro.jsonutil` (its tear/corruption policy
                             is the single JSONL reading path)
R004   hot-loop-call         no tracing (``trace_event`` / ``.emit``) or
                             allocation-heavy builtin calls inside loops
                             marked ``# hot-loop``
R005   to-dict-roundtrip     every class with ``to_dict`` has a ``from_dict``
                             reading every literal key ``to_dict`` writes
R006   except-swallow        no bare ``except:``, and no ``except Exception``
                             (or ``BaseException``) whose body only ``pass``es
                             — swallowed failures corrupt campaign results
                             silently
====== ===================== =====================================================

Suppression: append ``# repro-lint: disable=R001`` (comma-separated IDs, or
``all``) to the offending line, or put ``# repro-lint: disable-file=R001``
on its own line anywhere to silence a rule for the whole file.  Permanent,
reviewed exemptions live in :data:`ALLOWLIST`, keyed by (rule, module,
qualified name) with a recorded reason — see ``CHECKS.md``.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

#: Stable rule IDs -> (slug, one-line description).
RULES: Dict[str, Tuple[str, str]] = {
    "R001": (
        "wall-clock",
        "wall-clock call in a byte-identity-critical module",
    ),
    "R002": (
        "unseeded-random",
        "shared unseeded RNG used in a byte-identity-critical module",
    ),
    "R003": (
        "raw-jsonl-loop",
        "raw json.loads loop outside repro.jsonutil",
    ),
    "R004": (
        "hot-loop-call",
        "tracing/allocation-heavy call inside a # hot-loop",
    ),
    "R005": (
        "to-dict-roundtrip",
        "to_dict without a from_dict covering the same keys",
    ),
    "R006": (
        "except-swallow",
        "bare except, or except Exception whose body only passes",
    ),
}

#: Modules whose serialized output feeds byte-compared artifacts (campaign
#: records, merge ordering, reports, LaTeX emission) or whose measurements
#: must come from monotonic clocks (perf series).  Prefix match on the
#: dotted module name.
DETERMINISTIC_PREFIXES: Tuple[str, ...] = (
    "repro.campaign",
    "repro.experiments",
    "repro.perf",
)

#: Wall-clock call targets banned by R001 (monotonic clocks are fine: they
#: only ever feed elapsed-time fields, which reports redact for comparison).
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: Module-level ``random`` functions banned by R002 (the shared, unseeded
#: process RNG).  ``random.Random(seed)`` instances are the sanctioned path.
_GLOBAL_RANDOM = {
    f"random.{name}"
    for name in (
        "random", "randint", "randrange", "getrandbits", "choice", "choices",
        "shuffle", "sample", "uniform", "seed", "betavariate", "gauss",
    )
}

#: Calls banned inside ``# hot-loop`` loops: tracing hooks and the
#: allocation-heavy builtins whose per-iteration cost dominates pure-Python
#: inner loops.  (``len``/arithmetic/indexing stay free.)
_HOT_LOOP_NAME_DENY = {
    "trace_event", "dict", "set", "list", "tuple", "sorted", "frozenset",
    "deepcopy", "print",
}
_HOT_LOOP_ATTR_DENY = {"emit"}

#: Marker comment making R004 apply to a loop (on the loop's first line or
#: the line directly above it).
HOT_LOOP_MARK = "# hot-loop"

#: Permanent, reviewed rule exemptions: (rule, module, qualified name) ->
#: reason.  Keep this list minimal; every entry is documented in CHECKS.md.
ALLOWLIST: Dict[Tuple[str, str, str], str] = {
    ("R001", "repro.campaign.store", "ResultStore.append"):
        "finished_at is the latest-wins merge ordinal and must be real wall "
        "clock so records merged across hosts order correctly; reports "
        "redact it before byte comparison",
    ("R001", "repro.perf.history", "PerfHistory.append"):
        "recorded_at timestamps when a measurement was taken and must be "
        "real wall clock so history records order across sessions and "
        "hosts; every measured duration in the record itself comes from "
        "monotonic clocks",
}

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")
_SUPPRESS_FILE_RE = re.compile(r"#\s*repro-lint:\s*disable-file=([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True)
class Finding:  # repro-lint: disable=R005 (one-way CLI/CI payload, never read back)
    """One lint violation: where it is, which rule, and why it matters."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    @property
    def slug(self) -> str:
        return RULES.get(self.rule, ("unknown", ""))[0]

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} [{self.slug}] {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "file": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "slug": self.slug,
            "message": self.message,
        }


def module_name_for(path: Union[str, Path]) -> str:
    """Dotted module name of a source file (anchored at the ``repro`` package).

    Files outside a ``repro`` package root fall back to their stem, which
    makes the module-scoped rules (R001/R002) inert for them while the
    generic rules (R003-R005) still apply.
    """
    parts = Path(path).with_suffix("").parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            dotted = ".".join(parts[index:])
            return dotted[:-len(".__init__")] if dotted.endswith(".__init__") else dotted
    return Path(path).stem


def _is_deterministic_module(module: str) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in DETERMINISTIC_PREFIXES
    )


def _dotted(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Resolve a Name/Attribute chain to a dotted origin, through imports.

    ``import time`` + ``time.time`` -> ``time.time``; ``from time import
    time as now`` + ``now`` -> ``time.time``; unresolvable chains (calls on
    call results, subscripts, locals) return None.
    """
    chain: List[str] = []
    while isinstance(node, ast.Attribute):
        chain.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = aliases.get(node.id, node.id)
    chain.append(base)
    return ".".join(reversed(chain))


class _FromDictScan(ast.NodeVisitor):
    """Collect the literal keys a ``from_dict`` body reads off its mapping."""

    def __init__(self) -> None:
        self.keys: Set[str] = set()
        self.dynamic = False

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Attribute) and node.func.attr == "get" and node.args:
            key = node.args[0]
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                self.keys.add(key.value)
            else:
                self.dynamic = True
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if isinstance(node.ctx, ast.Load):
            key = node.slice
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                self.keys.add(key.value)
            elif not isinstance(key, ast.Constant):
                self.dynamic = True
        self.generic_visit(node)


class _ToDictScan(ast.NodeVisitor):
    """Collect the literal keys a ``to_dict`` body writes.

    Covers dict displays (``{"a": ...}``) and subscript stores
    (``payload["a"] = ...``); keys built dynamically (loops over field
    tuples) are invisible here, which is exactly the asymmetry R005 wants:
    a *literal* key someone added to ``to_dict`` must show up literally in
    ``from_dict`` too.
    """

    def __init__(self) -> None:
        self.keys: Dict[str, Tuple[int, int]] = {}

    def _note(self, key: ast.AST) -> None:
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            self.keys.setdefault(key.value, (key.lineno, key.col_offset))

    def visit_Dict(self, node: ast.Dict) -> None:
        for key in node.keys:
            if key is not None:
                self._note(key)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                self._note(target.slice)
        self.generic_visit(node)


class _Linter(ast.NodeVisitor):
    def __init__(self, path: str, module: str, source_lines: Sequence[str]) -> None:
        self.path = path
        self.module = module
        self.lines = source_lines
        self.findings: List[Finding] = []
        self.aliases: Dict[str, str] = {}
        self.loop_depth = 0
        self.hot_loop_depth = 0
        self.scope: List[str] = []
        self.deterministic = _is_deterministic_module(module)
        self.in_jsonutil = module == "repro.jsonutil"

    # ------------------------------------------------------------- plumbing
    def _report(self, node: ast.AST, rule: str, message: str) -> None:
        qualname = ".".join(self.scope)
        if (rule, self.module, qualname) in ALLOWLIST:
            return
        self.findings.append(
            Finding(
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                rule=rule,
                message=message,
            )
        )

    def _line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    # -------------------------------------------------------------- imports
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.aliases[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            return
        for alias in node.names:
            self.aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"

    # ---------------------------------------------------------------- scope
    def _visit_scoped(self, node, name: str) -> None:
        self.scope.append(name)
        self.generic_visit(node)
        self.scope.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_scoped(node, node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_scoped(node, node.name)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._check_roundtrip(node)
        self._visit_scoped(node, node.name)

    # ---------------------------------------------------------------- loops
    def _visit_loop(self, node) -> None:
        marked = HOT_LOOP_MARK in self._line(node.lineno) or (
            HOT_LOOP_MARK in self._line(node.lineno - 1)
        )
        self.loop_depth += 1
        self.hot_loop_depth += 1 if marked else 0
        self.generic_visit(node)
        self.hot_loop_depth -= 1 if marked else 0
        self.loop_depth -= 1

    def visit_For(self, node: ast.For) -> None:
        self._visit_loop(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._visit_loop(node)

    def visit_While(self, node: ast.While) -> None:
        self._visit_loop(node)

    # ---------------------------------------------------------------- calls
    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func, self.aliases)
        if dotted is not None:
            if self.deterministic and dotted in _WALL_CLOCK:
                self._report(
                    node, "R001",
                    f"{dotted}() stamps wall-clock time into a byte-identity-"
                    "critical module; use a monotonic clock for durations or "
                    "carry the timestamp in from the caller",
                )
            if self.deterministic and dotted in _GLOBAL_RANDOM:
                self._report(
                    node, "R002",
                    f"{dotted}() draws from the shared unseeded RNG; "
                    "construct random.Random(seed) so reruns reproduce",
                )
            if (
                dotted == "json.loads"
                and self.loop_depth > 0
                and not self.in_jsonutil
            ):
                self._report(
                    node, "R003",
                    "json.loads inside a loop: JSONL files are read through "
                    "repro.jsonutil.read_jsonl_objects, the one place with "
                    "the torn-tail/corruption policy",
                )
        if self.hot_loop_depth > 0:
            name: Optional[str] = None
            if isinstance(node.func, ast.Name):
                name = node.func.id if node.func.id in _HOT_LOOP_NAME_DENY else None
            elif isinstance(node.func, ast.Attribute):
                name = (
                    f".{node.func.attr}"
                    if node.func.attr in _HOT_LOOP_ATTR_DENY
                    else None
                )
            if name is not None:
                self._report(
                    node, "R004",
                    f"call to {name}() inside a # hot-loop; hoist it out of "
                    "the loop or gate it behind the conflict/restart branch",
                )
        self.generic_visit(node)

    # ------------------------------------------------------------ exceptions
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._report(
                node, "R006",
                "bare except catches everything including KeyboardInterrupt/"
                "SystemExit; name the exception types you expect",
            )
        else:
            caught = [node.type]
            if isinstance(node.type, ast.Tuple):
                caught = list(node.type.elts)
            broad = any(
                isinstance(item, ast.Name)
                and item.id in ("Exception", "BaseException")
                for item in caught
            )
            swallows = all(
                isinstance(stmt, ast.Pass)
                or (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant))
                for stmt in node.body
            )
            if broad and swallows:
                self._report(
                    node, "R006",
                    "except Exception with a pass-only body swallows every "
                    "failure silently; narrow the type, or at least record "
                    "why discarding is safe and re-raise what you can't "
                    "handle",
                )
        self.generic_visit(node)

    # ----------------------------------------------------------- round trip
    def _check_roundtrip(self, node: ast.ClassDef) -> None:
        methods = {
            stmt.name: stmt
            for stmt in node.body
            if isinstance(stmt, ast.FunctionDef)
        }
        to_dict = methods.get("to_dict")
        if to_dict is None:
            return
        from_dict = methods.get("from_dict")
        if from_dict is None:
            self._report(
                node, "R005",
                f"class {node.name} defines to_dict but no from_dict; "
                "serialized payloads must round-trip",
            )
            return
        writes = _ToDictScan()
        writes.visit(to_dict)
        reads = _FromDictScan()
        reads.visit(from_dict)
        missing = sorted(set(writes.keys) - reads.keys)
        if missing and not reads.dynamic:
            keys = ", ".join(repr(key) for key in missing)
            self._report(
                to_dict, "R005",
                f"{node.name}.to_dict writes {keys} but from_dict never "
                "reads it; the round trip silently drops the field",
            )


def _suppressions(source_lines: Sequence[str]) -> Tuple[Dict[int, Set[str]], Set[str]]:
    """Parse per-line and file-wide ``# repro-lint:`` suppression comments."""
    per_line: Dict[int, Set[str]] = {}
    per_file: Set[str] = set()
    for lineno, line in enumerate(source_lines, start=1):
        match = _SUPPRESS_FILE_RE.search(line)
        if match:
            per_file.update(
                token.strip() for token in match.group(1).split(",") if token.strip()
            )
            continue
        match = _SUPPRESS_RE.search(line)
        if match:
            per_line[lineno] = {
                token.strip() for token in match.group(1).split(",") if token.strip()
            }
    return per_line, per_file


def _suppressed(finding: Finding, per_line: Dict[int, Set[str]], per_file: Set[str]) -> bool:
    if "all" in per_file or finding.rule in per_file:
        return True
    rules = per_line.get(finding.line, set())
    return "all" in rules or finding.rule in rules


def lint_source(
    source: str,
    *,
    path: Union[str, Path] = "<string>",
    module: Optional[str] = None,
) -> List[Finding]:
    """Lint one source text; returns the unsuppressed findings."""
    path = str(path)
    if module is None:
        module = module_name_for(path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1 if exc.offset is not None else 1,
                rule="R000",
                message=f"file does not parse: {exc.msg}",
            )
        ]
    lines = source.splitlines()
    linter = _Linter(path, module, lines)
    linter.visit(tree)
    per_line, per_file = _suppressions(lines)
    return [
        finding
        for finding in linter.findings
        if not _suppressed(finding, per_line, per_file)
    ]


def lint_paths(paths: Iterable[Union[str, Path]]) -> List[Finding]:
    """Lint files and/or directory trees (``*.py``, sorted for stable output)."""
    files: List[Path] = []
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            files.extend(sorted(entry.rglob("*.py")))
        else:
            files.append(entry)
    findings: List[Finding] = []
    for file in files:
        findings.extend(
            lint_source(file.read_text(encoding="utf-8"), path=file)
        )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def render_findings(findings: Sequence[Finding]) -> str:
    """Human-readable report (one ``path:line:col: RULE message`` per line)."""
    if not findings:
        return "repro check lint: clean"
    lines = [finding.render() for finding in findings]
    lines.append(f"{len(findings)} finding(s)")
    return "\n".join(lines)


def findings_json(findings: Sequence[Finding]) -> str:
    """Machine-readable report: ``{"findings": [...], "count": N}``."""
    return json.dumps(
        {"findings": [f.to_dict() for f in findings], "count": len(findings)},
        indent=2,
    )
