"""Verifier for exec-generated engine kernels.

:func:`repro.engine.compiler.compile_circuit` lowers a circuit to python
source and ``exec``-s it — the one place the repo runs synthesized code.
This module parses that source back to an AST and proves, *before* it is
executed, that every kernel is exactly the program shape the compiler
promises:

* **straight-line** — the kernel body is nothing but ``v[<slot>] = <expr>``
  assignments (no calls, loops, branches, imports, attribute access);
* **levelized** — every slot an expression reads was written by an earlier
  assignment or is a declared source (primary input / flip-flop Q), and no
  slot is assigned twice;
* **bitwise-only** — expressions are built solely from ``&``, ``|``, ``^``,
  unary ``~``, slot reads ``v[<slot>]``, the ``mask`` parameter, and the
  integer constant ``0`` (any other literal means a mask-consistency bug).

The check is always-on in the test suite (see ``tests/conftest.py``) and
opt-in at runtime via ``REPRO_CHECK_KERNELS=1``; :func:`verify_packed_words`
is the matching runtime word-range sanitizer for the packed simulator.

The compiler's second codegen target — the numpy ``uint64`` kernels from
:func:`repro.engine.compiler.numpy_kernel_sources` — is covered by
:func:`verify_numpy_kernel_source` / :func:`verify_compiled_numpy` with the
same invariants restated for that grammar: the body is nothing but in-place
ufunc calls ``band/bor/bxor/binv(v[...], ..., v[<out>])`` and broadcast
constant assignments ``v[<out>] = 0`` / ``= mask``; each output slot is
written by exactly one *contiguous* statement group (a gate's chain may
re-read and re-write its own row, which is how in-place folding works, but
never anybody else's); every other row a statement reads was finished
earlier.  :func:`verify_packed_array` is the matching runtime sanitizer for
the numpy buffer.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.netlist.circuit import CircuitError

_KERNEL_NAME = "_kernel"
_KERNEL_PARAMS = ("v", "mask")
_NUMPY_KERNEL_PARAMS = ("v", "mask", "band", "bor", "bxor", "binv")

#: Binary operators a kernel expression may use.
_ALLOWED_BINOPS = (ast.BitAnd, ast.BitOr, ast.BitXor)

#: In-place ufunc whitelist for the numpy target: name -> exact arity
#: (inputs + the trailing output row).
_NUMPY_UFUNC_ARITY = {"band": 3, "bor": 3, "bxor": 3, "binv": 2}


class KernelVerificationError(CircuitError):
    """A generated kernel failed structural verification.

    Carries the offending chunk ``label`` and the list of violation
    messages; ``str()`` renders them all.
    """

    def __init__(self, label: str, violations: Sequence[str]) -> None:
        self.label = label
        self.violations = list(violations)
        summary = "; ".join(self.violations)
        super().__init__(f"kernel {label}: {summary}")


def _check_expression(
    node: ast.expr,
    defined: Set[int],
    violations: List[str],
) -> None:
    """Walk one right-hand side, collecting whitelist violations."""
    if isinstance(node, ast.BinOp):
        if not isinstance(node.op, _ALLOWED_BINOPS):
            violations.append(
                f"line {node.lineno}: operator {type(node.op).__name__} is "
                "not a bitwise op"
            )
        _check_expression(node.left, defined, violations)
        _check_expression(node.right, defined, violations)
    elif isinstance(node, ast.UnaryOp):
        if not isinstance(node.op, ast.Invert):
            violations.append(
                f"line {node.lineno}: unary {type(node.op).__name__} "
                "(only ~ is allowed)"
            )
        _check_expression(node.operand, defined, violations)
    elif isinstance(node, ast.Subscript):
        if not (isinstance(node.value, ast.Name) and node.value.id == "v"):
            violations.append(
                f"line {node.lineno}: subscript of something other than v"
            )
            return
        index = node.slice
        if not (isinstance(index, ast.Constant) and isinstance(index.value, int)
                and not isinstance(index.value, bool)):
            violations.append(
                f"line {node.lineno}: non-constant slot index in v[...]"
            )
            return
        if index.value not in defined:
            violations.append(
                f"line {node.lineno}: reads v[{index.value}] before it is "
                "defined (levelization broken)"
            )
    elif isinstance(node, ast.Name):
        if node.id != "mask":
            violations.append(
                f"line {node.lineno}: free name {node.id!r} (only mask)"
            )
    elif isinstance(node, ast.Constant):
        # 0 is the lone legal literal (CONST0); anything else — including a
        # hand-inlined mask value — is a width-consistency bug.
        if node.value != 0 or isinstance(node.value, bool) or not isinstance(node.value, int):
            violations.append(
                f"line {node.lineno}: literal {node.value!r} (only the "
                "constant 0 and the mask parameter are mask-consistent)"
            )
    else:
        violations.append(
            f"line {node.lineno}: node {type(node).__name__} is not in the "
            "straight-line bitwise whitelist"
        )


def verify_kernel_source(
    source: str,
    defined: Set[int],
    *,
    label: str = "<kernel>",
) -> List[int]:
    """Verify one generated kernel chunk against the program whitelist.

    ``defined`` is the set of slots already written (inputs, DFF Qs, and
    outputs of earlier chunks); it is updated in place with this chunk's
    assignments so chunks verify sequentially.  Returns the slots this
    chunk assigns, in order.  Raises :class:`KernelVerificationError` on
    the first chunk with any violation (all of that chunk's violations are
    attached).
    """
    violations: List[str] = []
    assigned: List[int] = []
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        raise KernelVerificationError(label, [f"does not parse: {exc.msg}"])

    if len(tree.body) != 1 or not isinstance(tree.body[0], ast.FunctionDef):
        raise KernelVerificationError(
            label, ["source is not a single function definition"]
        )
    func = tree.body[0]
    params = tuple(arg.arg for arg in func.args.args)
    if (
        func.name != _KERNEL_NAME
        or params != _KERNEL_PARAMS
        or func.args.vararg or func.args.kwarg
        or func.args.kwonlyargs or func.args.posonlyargs
        or func.args.defaults or func.decorator_list
    ):
        raise KernelVerificationError(
            label,
            [f"signature is not exactly def {_KERNEL_NAME}(v, mask)"],
        )

    for stmt in func.body:
        if isinstance(stmt, ast.Pass):
            continue
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            violations.append(
                f"line {stmt.lineno}: statement {type(stmt).__name__} is not "
                "a single v[slot] assignment"
            )
            continue
        target = stmt.targets[0]
        if not (
            isinstance(target, ast.Subscript)
            and isinstance(target.value, ast.Name)
            and target.value.id == "v"
            and isinstance(target.slice, ast.Constant)
            and isinstance(target.slice.value, int)
            and not isinstance(target.slice.value, bool)
        ):
            violations.append(
                f"line {stmt.lineno}: assignment target is not v[<constant slot>]"
            )
            continue
        slot = target.slice.value
        if slot < 0:
            violations.append(f"line {stmt.lineno}: negative slot v[{slot}]")
            continue
        if slot in defined:
            violations.append(
                f"line {stmt.lineno}: v[{slot}] assigned twice (program is "
                "not single-assignment straight-line code)"
            )
            continue
        # The RHS is checked before the target is marked defined, so a
        # self-referential assignment (a spliced combinational cycle) is
        # reported as a use-before-def on its own slot.
        _check_expression(stmt.value, defined, violations)
        defined.add(slot)
        assigned.append(slot)

    if violations:
        raise KernelVerificationError(label, violations)
    return assigned


def verify_compiled(compiled) -> List[int]:
    """Verify every generated kernel chunk of a :class:`CompiledCircuit`.

    Seeds the defined-slot set with the circuit's sources (primary inputs
    and flip-flop Q slots) and threads it through the chunks in execution
    order, so cross-chunk use-before-def is caught too.  Returns all
    assigned slots in program order; raises
    :class:`KernelVerificationError` on the first bad chunk.
    """
    from repro.engine.compiler import kernel_sources

    defined: Set[int] = set(compiled.input_slots)
    defined.update(slot for _, slot, _ in compiled.state_items)
    assigned: List[int] = []
    for start, source in kernel_sources(compiled.ops):
        assigned.extend(
            verify_kernel_source(
                source, defined, label=f"<repro.engine kernel@{start}>"
            )
        )
    return assigned


def _row_slot(node: ast.expr) -> Optional[int]:
    """The slot of a ``v[<non-negative constant int>]`` row read, else None."""
    if (
        isinstance(node, ast.Subscript)
        and isinstance(node.value, ast.Name)
        and node.value.id == "v"
        and isinstance(node.slice, ast.Constant)
        and isinstance(node.slice.value, int)
        and not isinstance(node.slice.value, bool)
        and node.slice.value >= 0
    ):
        return node.slice.value
    return None


def verify_numpy_kernel_source(
    source: str,
    defined: Set[int],
    *,
    label: str = "<numpy kernel>",
) -> List[int]:
    """Verify one numpy-target kernel chunk against the extended whitelist.

    The numpy grammar is call-shaped rather than expression-shaped, so the
    single-assignment invariant is restated as *contiguous-group
    assignment*: a gate lowers to a run of in-place ufunc calls that all
    target the same output row, and while that run is "open" the row may be
    re-read and re-written (that is the in-place fold); any statement
    targeting a different row closes the group for good.  Inputs of a
    group's first statement must be finished rows; later statements may
    also read the open row.  Constant assignments (``v[o] = 0`` /
    ``v[o] = mask``) are single-statement groups.

    ``defined`` threads across chunks exactly like
    :func:`verify_kernel_source`; the returned list holds this chunk's
    finished slots in program order.
    """
    violations: List[str] = []
    assigned: List[int] = []
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        raise KernelVerificationError(label, [f"does not parse: {exc.msg}"])

    if len(tree.body) != 1 or not isinstance(tree.body[0], ast.FunctionDef):
        raise KernelVerificationError(
            label, ["source is not a single function definition"]
        )
    func = tree.body[0]
    params = tuple(arg.arg for arg in func.args.args)
    if (
        func.name != _KERNEL_NAME
        or params != _NUMPY_KERNEL_PARAMS
        or func.args.vararg or func.args.kwarg
        or func.args.kwonlyargs or func.args.posonlyargs
        or func.args.defaults or func.decorator_list
    ):
        raise KernelVerificationError(
            label,
            [
                "signature is not exactly def "
                f"{_KERNEL_NAME}({', '.join(_NUMPY_KERNEL_PARAMS)})"
            ],
        )

    open_slot: Optional[int] = None

    def finish(slot: Optional[int]) -> None:
        if slot is not None:
            defined.add(slot)
            assigned.append(slot)

    for stmt in func.body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Assign):
            # Broadcast constant: v[o] = 0 / v[o] = mask, one statement,
            # never part of a ufunc group.
            finish(open_slot)
            open_slot = None
            if len(stmt.targets) != 1:
                violations.append(
                    f"line {stmt.lineno}: multi-target assignment"
                )
                continue
            slot = _row_slot(stmt.targets[0])
            if slot is None:
                violations.append(
                    f"line {stmt.lineno}: assignment target is not "
                    "v[<constant slot>]"
                )
                continue
            if slot in defined:
                violations.append(
                    f"line {stmt.lineno}: v[{slot}] assigned twice (program "
                    "is not single-group straight-line code)"
                )
                continue
            value = stmt.value
            is_zero = (
                isinstance(value, ast.Constant)
                and value.value == 0
                and not isinstance(value.value, bool)
                and isinstance(value.value, int)
            )
            is_mask = isinstance(value, ast.Name) and value.id == "mask"
            if not (is_zero or is_mask):
                violations.append(
                    f"line {stmt.lineno}: constant assignment RHS must be 0 "
                    "or mask"
                )
                continue
            defined.add(slot)
            assigned.append(slot)
            continue
        if not (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call)):
            violations.append(
                f"line {stmt.lineno}: statement {type(stmt).__name__} is not "
                "an in-place ufunc call or constant assignment"
            )
            continue
        call = stmt.value
        if not isinstance(call.func, ast.Name) or call.func.id not in _NUMPY_UFUNC_ARITY:
            violations.append(
                f"line {stmt.lineno}: call to something other than "
                f"{'/'.join(sorted(_NUMPY_UFUNC_ARITY))}"
            )
            continue
        name = call.func.id
        arity = _NUMPY_UFUNC_ARITY[name]
        if len(call.args) != arity or call.keywords:
            violations.append(
                f"line {stmt.lineno}: {name} takes exactly {arity} "
                "positional row arguments"
            )
            continue
        slots = [_row_slot(arg) for arg in call.args]
        if any(slot is None for slot in slots):
            violations.append(
                f"line {stmt.lineno}: {name} argument is not v[<constant slot>]"
            )
            continue
        out = slots[-1]
        if out != open_slot:
            # A new group starts: the previous one is finished for good.
            finish(open_slot)
            open_slot = None
            if out in defined:
                violations.append(
                    f"line {stmt.lineno}: v[{out}] assigned twice (program "
                    "is not single-group straight-line code)"
                )
                continue
            readable = defined
        else:
            readable = defined | {open_slot}
        bad = [slot for slot in slots[:-1] if slot not in readable]
        if bad:
            violations.append(
                f"line {stmt.lineno}: reads v[{bad[0]}] before it is "
                "defined (levelization broken)"
            )
            continue
        open_slot = out

    finish(open_slot)
    if violations:
        raise KernelVerificationError(label, violations)
    return assigned


def verify_compiled_numpy(compiled) -> List[int]:
    """Verify every numpy-target kernel chunk of a ``CompiledCircuit``.

    The numpy twin of :func:`verify_compiled`: seeds the defined-slot set
    with the sources and threads it through
    :func:`repro.engine.compiler.numpy_kernel_sources` in execution order.
    """
    from repro.engine.compiler import numpy_kernel_sources

    defined: Set[int] = set(compiled.input_slots)
    defined.update(slot for _, slot, _ in compiled.state_items)
    assigned: List[int] = []
    for start, source in numpy_kernel_sources(compiled.ops):
        assigned.extend(
            verify_numpy_kernel_source(
                source, defined, label=f"<repro.engine numpy kernel@{start}>"
            )
        )
    return assigned


def verify_packed_words(
    values: Iterable[int],
    mask: int,
    *,
    label: str = "<packed words>",
) -> None:
    """Runtime sanitizer: every packed word must fit the batch mask.

    A word outside ``[0, mask]`` means some op leaked bits past the lane
    width (or went negative through a missing mask XOR) — the exact class
    of bug the mask discipline in ``_op_expression`` exists to prevent.
    """
    violations = [
        f"word #{index} = {word:#x} outside [0, {mask:#x}]"
        for index, word in enumerate(values)
        if word < 0 or word > mask
    ]
    if violations:
        raise KernelVerificationError(label, violations)


def verify_packed_array(
    buffer,
    mask_row,
    *,
    label: str = "<packed array>",
) -> None:
    """Runtime sanitizer for the numpy backend's uint64 value buffer.

    The numpy twin of :func:`verify_packed_words`: after the per-pass
    canonicalization sweep, no row may carry bits outside the lane mask
    (``mask_row`` is all-ones words with a partial final word).  Works by
    duck-typing on the array arguments, so this module still imports
    without numpy.
    """
    stray = buffer & ~mask_row
    if stray.any():
        rows = stray.any(axis=1).nonzero()[0]
        violations = [
            f"slot row #{int(row)} has bits outside the lane mask"
            for row in rows[:8]
        ]
        if len(rows) > 8:
            violations.append(f"... and {len(rows) - 8} more rows")
        raise KernelVerificationError(label, violations)
