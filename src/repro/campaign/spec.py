"""Declarative experiment-campaign specifications.

A *campaign* is a grid of independent jobs — one per (scheme, scheme-params,
benchmark, attack, attack-params, seed) cell of the paper's evaluation — that
the :mod:`repro.campaign.executor` can run in any order, in parallel, and
across process restarts.  Two properties make that safe:

* every job is **fully described by its parameters**: the worker re-derives
  the benchmark, the locked circuit and every RNG seed from ``params`` alone,
  so a cell computes the same payload no matter which process runs it;
* every job has a **stable content-hashed key** (:func:`job_key`) derived
  from its kind and canonicalised parameters, so a result store can recognise
  "this exact cell already ran" across sessions — the basis of resume.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional

from repro.jsonutil import jsonable as _jsonable

#: Length of the hex job key.  16 hex chars = 64 bits of SHA-256: collisions
#: are astronomically unlikely for any realistic grid while keeping the keys
#: readable in logs and JSONL records.
KEY_HEX_CHARS = 16


def canonical_params(params: Mapping[str, object]) -> str:
    """Render ``params`` as canonical JSON (sorted keys, no whitespace).

    The canonical form — not the Python object — is what gets hashed, so
    semantically equal parameter sets (dict ordering, tuples vs lists after a
    JSON round trip) always map to the same job key.
    """
    return json.dumps(params, sort_keys=True, separators=(",", ":"), default=str)


def job_key(kind: str, params: Mapping[str, object]) -> str:
    """Stable content hash identifying one job across sessions."""
    digest = hashlib.sha256(
        f"{kind}\n{canonical_params(params)}".encode("utf-8")
    ).hexdigest()
    return digest[:KEY_HEX_CHARS]


def shard_label(index: int, count: int) -> str:
    """Human-readable shard tag (1-based) used in store file names.

    ``shard_label(1, 4) == "2of4"`` — the tag a ``--shard 2/4`` run writes
    its ``results-<tag>.jsonl`` under.
    """
    if count < 1:
        raise ValueError(f"shard count must be >= 1, got {count}")
    if not 0 <= index < count:
        raise ValueError(f"shard index must be in [0, {count}), got {index}")
    return f"{index + 1}of{count}"


@dataclass(frozen=True)
class JobSpec:
    """One cell of a campaign grid.

    Attributes
    ----------
    kind:
        Name of the worker function in the :mod:`repro.campaign.jobs`
        registry (``"table3_cell"``, ``"figure4_cell"``, ``"sleep"``, …).
    params:
        JSON-serialisable parameters that fully determine the cell's work,
        including every seed the worker must re-seed its RNGs from.
    group:
        Aggregation group (``"table3"``, ``"figure4"``, …) — which table the
        cell's payload is folded back into.
    key:
        Content hash of ``(kind, params)``; computed automatically.
    """

    kind: str
    params: Dict[str, object]
    group: str = ""
    key: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        # Normalise params through a JSON round trip so the in-memory spec,
        # the manifest on disk, and a spec rebuilt from the manifest all hash
        # identically (tuples become lists, keys become strings, ...).
        object.__setattr__(self, "params", _jsonable(dict(self.params)))
        object.__setattr__(self, "key", job_key(self.kind, self.params))

    def to_dict(self) -> Dict[str, object]:
        return {
            "key": self.key,
            "kind": self.kind,
            "group": self.group,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "JobSpec":
        job = cls(
            kind=str(data["kind"]),
            params=dict(data.get("params", {})),  # type: ignore[arg-type]
            group=str(data.get("group", "")),
        )
        recorded = data.get("key")
        if recorded and recorded != job.key:
            raise ValueError(
                f"manifest job key {recorded!r} does not match the recomputed "
                f"key {job.key!r} for kind={job.kind!r}; the manifest was "
                "edited or produced by an incompatible version"
            )
        return job


@dataclass
class CampaignSpec:
    """A named, ordered collection of jobs plus free-form metadata.

    Job order is meaningful: aggregation emits table rows in spec order, so
    parallel execution (which completes jobs in arbitrary order) still
    reproduces the serial tables byte for byte.
    """

    name: str
    jobs: List[JobSpec] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        seen: Dict[str, JobSpec] = {}
        for job in self.jobs:
            clash = seen.get(job.key)
            if clash is not None:
                raise ValueError(
                    f"duplicate job in campaign {self.name!r}: "
                    f"{job.kind}/{job.params} hashes to the same key "
                    f"({job.key}) as {clash.kind}/{clash.params}"
                )
            seen[job.key] = job

    def __len__(self) -> int:
        return len(self.jobs)

    def job_for(self, key: str) -> Optional[JobSpec]:
        for job in self.jobs:
            if job.key == key:
                return job
        return None

    def groups(self) -> List[str]:
        """Group names in first-appearance order."""
        ordered: List[str] = []
        for job in self.jobs:
            if job.group not in ordered:
                ordered.append(job.group)
        return ordered

    def jobs_in_group(self, group: str) -> List[JobSpec]:
        return [job for job in self.jobs if job.group == group]

    def shard(
        self,
        index: int,
        count: int,
        *,
        strategy: str = "round-robin",
        costs: Optional[Mapping[str, float]] = None,
    ) -> "CampaignSpec":
        """Deterministic ``1``-of-``count`` partition of this campaign.

        Two strategies are available; both are pure functions of the spec
        (and, for ``"cost"``, of the supplied cost table), so every host that
        builds the same spec computes the identical partition:

        * ``"round-robin"`` (default) — jobs are striped over **spec order**
          (job ``i`` lands in shard ``i % count``).  Striping (rather than
          contiguous blocks) spreads each table's expensive benchmarks across
          shards, which roughly balances wall-clock without any cost model.
        * ``"cost"`` — greedy LPT (longest-processing-time-first) partition
          fed by measured per-job costs, keyed by job key — typically the
          ``cpu_seconds`` of a previous sweep of the same grid (see
          :func:`repro.campaign.store.measured_job_costs`).  Jobs are
          assigned, most expensive first, to the currently lightest shard
          (ties: lowest shard index), so shards finish together even when a
          few cells dominate the grid.  Jobs with no measured cost get the
          mean of the known costs; when ``costs`` has no overlap with the
          spec at all, the partition **falls back to round-robin**.

        The shard keeps the campaign ``name`` (it is the *same* campaign —
        the manifest always describes the full grid), preserves spec order
        within the shard (aggregation depends on it) and records its slice
        in ``metadata["shard"]`` so status/report output can label it.
        """
        label = shard_label(index, count)  # validates index/count
        if strategy == "cost":
            jobs = self._cost_shard_jobs(index, count, costs)
            applied = "cost" if jobs is not None else "round-robin (no costs)"
            if jobs is None:
                jobs = list(self.jobs[index::count])
        elif strategy == "round-robin":
            jobs = list(self.jobs[index::count])
            applied = "round-robin"
        else:
            raise ValueError(
                f"unknown shard strategy {strategy!r}; expected "
                "'round-robin' or 'cost'"
            )
        return CampaignSpec(
            name=self.name,
            jobs=jobs,
            metadata={
                **self.metadata,
                "shard": {"index": index, "count": count, "label": label,
                          "strategy": applied},
            },
        )

    def _cost_shard_jobs(
        self, index: int, count: int, costs: Optional[Mapping[str, float]]
    ) -> Optional[List[JobSpec]]:
        """Greedy-LPT slice of the spec, or None when no costs overlap."""
        spec_keys = {job.key for job in self.jobs}
        known = {
            key: float(value)
            for key, value in (costs or {}).items()
            if key in spec_keys
        }
        if not known:
            return None
        mean_cost = sum(known.values()) / len(known)
        weighted = [
            (known.get(job.key, mean_cost), position, job)
            for position, job in enumerate(self.jobs)
        ]
        # Most expensive first; spec position breaks ties deterministically.
        weighted.sort(key=lambda item: (-item[0], item[1]))
        loads = [0.0] * count
        buckets: List[List[int]] = [[] for _ in range(count)]
        for cost, position, _job in weighted:
            target = min(range(count), key=lambda shard: (loads[shard], shard))
            loads[target] += cost
            buckets[target].append(position)
        return [self.jobs[position] for position in sorted(buckets[index])]

    def extend(self, jobs: Iterable[JobSpec]) -> None:
        for job in jobs:
            self.jobs.append(job)
        self.__post_init__()

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "metadata": _jsonable(self.metadata),
            "jobs": [job.to_dict() for job in self.jobs],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "CampaignSpec":
        return cls(
            name=str(data.get("name", "campaign")),
            jobs=[JobSpec.from_dict(job) for job in data.get("jobs", [])],  # type: ignore[union-attr]
            metadata=dict(data.get("metadata", {})),  # type: ignore[arg-type]
        )
