"""Job-kind registry: how a worker process turns a spec cell into a payload.

A *job kind* is a name bound to a callable ``fn(params: dict) -> dict`` whose
return value must be JSON-serialisable (it is stored verbatim in the result
store and handed to the group aggregator).  Built-in kinds — the experiment
cells plus a ``sleep`` kind used by the tests, the CI smoke grid and the
throughput benchmark — are resolved lazily by import path, so worker
processes (including ``spawn``-started ones that do not inherit the parent's
module state) can always resolve them.  Additional kinds can be registered
at runtime with :func:`register_job_kind`; with the default ``fork`` start
method those propagate to pool workers too.
"""

from __future__ import annotations

import importlib
import os
import time
from typing import Callable, Dict, Mapping

JobFn = Callable[[Mapping[str, object]], Dict[str, object]]

#: Built-in kinds, resolved lazily as ``module:function``.
_BUILTIN: Dict[str, str] = {
    "sleep": "repro.campaign.jobs:sleep_job",
    "table1": "repro.experiments.table1:run_table1_cell",
    "table2": "repro.experiments.table2:run_table2_cell",
    "table3_cell": "repro.experiments.table3:run_table3_cell",
    "table4_cell": "repro.experiments.table4:run_table4_cell",
    "table5_cell": "repro.experiments.table5:run_table5_cell",
    "figure4_cell": "repro.experiments.figure4:run_figure4_cell",
}

_REGISTRY: Dict[str, JobFn] = {}


def register_job_kind(name: str, fn: JobFn, *, override: bool = False) -> None:
    """Bind ``name`` to ``fn`` for this process (and forked children)."""
    if not override and (name in _REGISTRY or name in _BUILTIN):
        raise ValueError(f"job kind {name!r} is already registered")
    _REGISTRY[name] = fn


def resolve_job_kind(name: str) -> JobFn:
    """Return the callable for ``name``, importing built-ins on demand."""
    fn = _REGISTRY.get(name)
    if fn is not None:
        return fn
    target = _BUILTIN.get(name)
    if target is None:
        raise KeyError(
            f"unknown job kind {name!r}; known kinds: "
            f"{sorted(set(_BUILTIN) | set(_REGISTRY))}"
        )
    module_name, _, attr = target.partition(":")
    fn = getattr(importlib.import_module(module_name), attr)
    _REGISTRY[name] = fn
    return fn


def execute_job(kind: str, params: Mapping[str, object]) -> Dict[str, object]:
    """Run one job in the current process and return its payload."""
    return resolve_job_kind(kind)(params)


def sleep_job(params: Mapping[str, object]) -> Dict[str, object]:
    """Deterministic filler job for tests, smoke grids and benchmarks.

    ``seconds`` — wall-clock to sleep; ``fail`` — raise instead of returning
    (exercises error isolation); ``kill`` — SIGKILL the executing process
    (exercises broken-pool recovery; never use outside tests); ``log_path``
    — append one line per execution (lets tests count how often a job
    actually ran across resume cycles); ``unpicklable`` — return a payload
    holding a lambda (JSON-coercible to a string but not picklable:
    exercises in-attempt payload coercion, which must make serial and pool
    runs complete identically); ``circular`` — return a self-referential
    payload JSON cannot coerce at all (exercises the error row both modes
    must record instead of crashing or re-running).
    """
    seconds = float(params.get("seconds", 0.0))
    if params.get("log_path"):
        # O_APPEND keeps concurrent one-line writes from interleaving.
        fd = os.open(str(params["log_path"]), os.O_WRONLY | os.O_CREAT | os.O_APPEND)
        try:
            os.write(fd, f"{params.get('marker', 'run')}\n".encode("utf-8"))
        finally:
            os.close(fd)
    if seconds:
        time.sleep(seconds)
    if params.get("kill"):
        os.kill(os.getpid(), 9)
    if params.get("fail"):
        raise RuntimeError(f"sleep job failed on request: {params.get('marker', '')}")
    if params.get("unpicklable"):
        return {"slept": seconds, "marker": params.get("marker"),
                "handle": lambda: None}  # type: ignore[dict-item]
    if params.get("circular"):
        payload: Dict[str, object] = {"slept": seconds,
                                      "marker": params.get("marker")}
        payload["loop"] = payload
        return payload
    return {"slept": seconds, "marker": params.get("marker")}
