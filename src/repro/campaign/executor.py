"""Campaign execution: serial in-process, or fanned out over worker processes.

Two modes, selected by ``workers``:

* ``workers == 0`` — **serial in-process**: jobs run one after another inside
  the calling process.  This is the deterministic reference mode the
  experiment drivers default to, and what the tests compare the parallel
  mode against.
* ``workers >= 1`` — **process pool**: jobs are fanned out over a
  ``concurrent.futures.ProcessPoolExecutor`` with ``workers`` workers.

Per-job wall-clock timeouts are enforced *inside* the executing process with
``SIGALRM`` (both modes), so a job that overruns is interrupted exactly where
it is and recorded as a ``timeout`` row — the pool keeps its worker and the
sweep keeps going.  A job that raises is recorded as an ``error`` row.  A
worker that dies outright (segfault, OOM-kill) breaks the pool; the executor
records nothing for jobs that already finished (their records were appended
as they completed), rebuilds the pool, retries each not-yet-recorded job
once, and records an ``error`` row for any job that kills the pool twice.

Resume is a property of the (spec, store) pair, not of this module: jobs
whose key already has a record in the store are skipped up front (completed
rows always; error/timeout rows unless ``retry_failed``).
"""

from __future__ import annotations

import signal
import threading
import time
import traceback
from concurrent.futures import CancelledError, ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.campaign.jobs import execute_job
from repro.campaign.spec import CampaignSpec, JobSpec
from repro.campaign.store import (
    STATUS_COMPLETED,
    STATUS_ERROR,
    STATUS_TIMEOUT,
    Record,
    ResultStore,
)


class JobTimeout(Exception):
    """Raised inside a job when its per-job wall-clock budget expires."""


@contextmanager
def job_deadline(seconds: Optional[float]):
    """Interrupt the enclosed block with :class:`JobTimeout` after ``seconds``.

    SIGALRM-based, so it works for pure-Python jobs on POSIX when running in
    a process's main thread (which both executor modes do).  With ``seconds``
    falsy — or without SIGALRM / off the main thread — it is a no-op and the
    job runs unbounded.
    """
    usable = (
        seconds
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _expire(signum, frame):
        raise JobTimeout(f"job exceeded its {seconds:.3f}s wall-clock budget")

    previous = signal.signal(signal.SIGALRM, _expire)
    signal.setitimer(signal.ITIMER_REAL, float(seconds))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def execute_job_attempt(
    kind: str,
    params: Dict[str, object],
    job_timeout: Optional[float] = None,
) -> Record:
    """Run one job attempt in this process and classify the outcome.

    Never raises: the return value is a partial record with ``status`` one of
    ``completed`` / ``timeout`` / ``error`` plus the payload or the failure
    context.  ``KeyboardInterrupt``/``SystemExit`` still propagate so an
    operator can stop a serial sweep.
    """
    start = time.perf_counter()
    try:
        with job_deadline(job_timeout):
            payload = execute_job(kind, params)
        return {
            "status": STATUS_COMPLETED,
            "payload": payload,
            "runtime_seconds": time.perf_counter() - start,
        }
    except JobTimeout as exc:
        return {
            "status": STATUS_TIMEOUT,
            "error": str(exc),
            "job_timeout": job_timeout,
            "runtime_seconds": time.perf_counter() - start,
        }
    except Exception as exc:
        return {
            "status": STATUS_ERROR,
            "error": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(limit=16),
            "runtime_seconds": time.perf_counter() - start,
        }


def _pool_worker(job: Dict[str, object], job_timeout: Optional[float]) -> Record:
    """Top-level pool target (must be picklable for any start method)."""
    record = execute_job_attempt(
        str(job["kind"]), dict(job["params"]), job_timeout  # type: ignore[arg-type]
    )
    record.update({"key": job["key"], "kind": job["kind"], "group": job["group"]})
    return record


@dataclass
class RunSummary:
    """What one ``run_campaign`` invocation did (not the store's full state)."""

    total: int = 0          #: jobs in the spec
    skipped: int = 0        #: jobs satisfied by existing records (resume)
    executed: int = 0       #: attempts actually run this invocation
    completed: int = 0
    timeouts: int = 0
    errors: int = 0
    wall_seconds: float = 0.0
    records: List[Record] = field(default_factory=list)

    def note(self, record: Record) -> None:
        self.executed += 1
        status = record.get("status")
        if status == STATUS_COMPLETED:
            self.completed += 1
        elif status == STATUS_TIMEOUT:
            self.timeouts += 1
        else:
            self.errors += 1
        self.records.append(record)

    @property
    def remaining(self) -> int:
        return self.total - self.skipped - self.executed


ProgressFn = Callable[[Record, int, int], None]


def run_campaign(
    spec: CampaignSpec,
    store: ResultStore,
    *,
    workers: int = 0,
    job_timeout: Optional[float] = None,
    resume: bool = True,
    retry_failed: bool = False,
    progress: Optional[ProgressFn] = None,
    write_manifest: bool = True,
) -> RunSummary:
    """Execute ``spec``'s jobs, appending one record per finished attempt.

    Parameters
    ----------
    workers:
        ``0`` = serial in-process (deterministic reference); ``N >= 1`` = a
        process pool with ``N`` workers (``1`` still buys crash isolation).
    job_timeout:
        Per-job wall-clock budget in seconds (None = unbounded).
    resume:
        Skip jobs whose key already has a record (completed rows always;
        error/timeout rows too unless ``retry_failed``).
    progress:
        Optional ``fn(record, finished_count, pending_total)`` callback,
        invoked after each record is appended.
    """
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    started = time.perf_counter()
    summary = RunSummary(total=len(spec.jobs))
    if write_manifest and store.persistent:
        store.write_manifest(spec)

    pending: List[JobSpec] = []
    for job in spec.jobs:
        record = store.record_for(job.key) if resume else None
        if record is not None:
            if record.get("status") == STATUS_COMPLETED or not retry_failed:
                summary.skipped += 1
                continue
        pending.append(job)

    def finish(job: JobSpec, body: Record) -> None:
        record = dict(body)
        record.update({
            "key": job.key, "kind": job.kind, "group": job.group,
            "params": dict(job.params),
        })
        stored = store.append(record)
        summary.note(stored)
        if progress is not None:
            progress(stored, summary.executed, len(pending))

    if workers == 0:
        for job in pending:
            finish(job, execute_job_attempt(job.kind, dict(job.params), job_timeout))
    else:
        _run_pool(pending, workers, job_timeout, finish)

    summary.wall_seconds = time.perf_counter() - started
    return summary


def _run_pool(
    pending: List[JobSpec],
    workers: int,
    job_timeout: Optional[float],
    finish: Callable[[JobSpec, Record], None],
) -> None:
    """Fan ``pending`` out over a process pool, surviving broken pools.

    A worker dying outright (segfault, OOM-kill) breaks the whole pool, and
    every still-unfinished future in the round fails with it — including
    innocent jobs that merely shared the pool with the culprit.  So nothing
    is judged in the shared round: every job whose future failed at the pool
    level is re-run in a **single-job pool**, where a crash is attributable
    to exactly that job and is recorded as its ``error`` row.  Jobs that
    finished before the breakage keep their records; an innocent job re-run
    after a breakage has at-least-once (not exactly-once) semantics.
    """
    suspects: List[JobSpec] = []
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = {
            pool.submit(_pool_worker, job.to_dict(), job_timeout): job
            for job in pending
        }
        for future in as_completed(futures):
            job = futures[future]
            try:
                body = future.result()
            except (CancelledError, BrokenProcessPool, Exception):  # noqa: BLE001
                suspects.append(job)
                continue
            finish(job, body)

    # Keep the spec's job order for the isolated re-runs (as_completed
    # yields in completion order).
    order = {job.key: index for index, job in enumerate(pending)}
    for job in sorted(suspects, key=lambda job: order[job.key]):
        with ProcessPoolExecutor(max_workers=1) as pool:
            future = pool.submit(_pool_worker, job.to_dict(), job_timeout)
            try:
                body = future.result()
            except (CancelledError, BrokenProcessPool, Exception) as exc:  # noqa: BLE001
                body = {
                    "status": STATUS_ERROR,
                    "error": (
                        "worker process died while running this job in an "
                        f"isolated pool: {type(exc).__name__}: {exc}"
                    ),
                    "runtime_seconds": 0.0,
                }
            finish(job, body)
