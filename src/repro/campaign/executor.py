"""Campaign execution: serial in-process, or fanned out over worker processes.

Two modes, selected by ``workers``:

* ``workers == 0`` — **serial in-process**: jobs run one after another inside
  the calling process.  This is the deterministic reference mode the
  experiment drivers default to, and what the tests compare the parallel
  mode against.
* ``workers >= 1`` — **process pool**: jobs are fanned out over a
  ``concurrent.futures.ProcessPoolExecutor`` with ``workers`` workers.

Per-job wall-clock timeouts are enforced *inside* the executing process with
``SIGALRM`` (both modes), so a job that overruns is interrupted exactly where
it is and recorded as a ``timeout`` row — the pool keeps its worker and the
sweep keeps going.  A job that raises is recorded as an ``error`` row.
Payloads are coerced to plain JSON types inside the attempt, so a value JSON
cannot represent (a solver object, a lambda) completes with the identical
stringified payload in serial and pool modes, one it cannot coerce at all
(a circular reference) is an ``error`` row in both, and nothing unpicklable
ever crosses the pool boundary; a future that still fails at that boundary
without breaking the pool is an immediate ``error`` row, never a pointless
isolated-pool re-run.  A
worker that dies outright (segfault, OOM-kill) breaks the pool; the executor
records nothing for jobs that already finished (their records were appended
as they completed), rebuilds the pool, retries each not-yet-recorded job
once, and records an ``error`` row for any job that kills the pool twice.
Every finished-attempt record carries the attempt's resource metrics —
``runtime_seconds`` (wall clock), ``cpu_seconds`` (process CPU time) and
``max_rss_kb`` (peak RSS via ``getrusage``; None off-POSIX) — plus a
``solver`` block: the attempt-wide :class:`~repro.sat.session.SolverTelemetry` snapshot (decisions/propagations/conflicts/… aggregated
over every ``SolveSession`` the job created), captured in the process that
ran the job, so solver-level metrics flow from the CDCL inner loop all the
way to ``campaign status`` / ``report``.

Resume is a property of the (spec, store) pair, not of this module: jobs
whose key already has a record in the store are skipped up front (completed
rows always; error/timeout rows unless ``retry_failed``).
"""

from __future__ import annotations

import signal
import sys
import threading
import time
import traceback
from concurrent.futures import CancelledError, ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

try:  # POSIX-only; records carry max_rss_kb = None where it is unavailable
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX platform
    _resource = None  # type: ignore[assignment]

from repro.campaign.jobs import execute_job
from repro.campaign.spec import CampaignSpec, JobSpec, _jsonable
from repro.sat.session import SolverTelemetry, capture_solver_telemetry
from repro.trace.writer import trace_to
from repro.campaign.store import (
    STATUS_COMPLETED,
    STATUS_ERROR,
    STATUS_TIMEOUT,
    Record,
    ResultStore,
)


class JobTimeout(Exception):
    """Raised inside a job when its per-job wall-clock budget expires."""


@contextmanager
def job_deadline(seconds: Optional[float]):
    """Interrupt the enclosed block with :class:`JobTimeout` after ``seconds``.

    SIGALRM-based, so it works for pure-Python jobs on POSIX when running in
    a process's main thread (which both executor modes do).  With ``seconds``
    falsy — or without SIGALRM / off the main thread — it is a no-op and the
    job runs unbounded.
    """
    usable = (
        seconds
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _expire(signum, frame):
        raise JobTimeout(f"job exceeded its {seconds:.3f}s wall-clock budget")

    previous = signal.signal(signal.SIGALRM, _expire)
    signal.setitimer(signal.ITIMER_REAL, float(seconds))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def peak_rss_kb() -> Optional[int]:
    """Peak resident set size of this process in kB (None where unknown).

    ``getrusage`` reports the high-water mark of the whole process lifetime,
    so in a reused pool worker the value is "peak so far", an upper bound for
    the individual job — still the number capacity planning needs (can N
    workers of this kind fit on the host?).
    """
    if _resource is None:
        return None
    maxrss = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # ru_maxrss is bytes on macOS, kB on Linux
        maxrss //= 1024
    return int(maxrss)


def _resource_fields(start_wall: float, start_cpu: float) -> Record:
    """Wall/CPU/RSS metrics every finished-attempt record carries."""
    return {
        "runtime_seconds": time.perf_counter() - start_wall,
        "cpu_seconds": max(0.0, time.process_time() - start_cpu),
        "max_rss_kb": peak_rss_kb(),
    }


def execute_job_attempt(
    kind: str,
    params: Dict[str, object],
    job_timeout: Optional[float] = None,
    trace_path: Union[str, Path, None] = None,
) -> Record:
    """Run one job attempt in this process and classify the outcome.

    Never raises: the return value is a partial record with ``status`` one of
    ``completed`` / ``timeout`` / ``error`` plus the payload or the failure
    context, and always carries the attempt's resource metrics
    (``runtime_seconds`` wall clock, ``cpu_seconds`` process CPU time,
    ``max_rss_kb`` peak RSS).  ``KeyboardInterrupt``/``SystemExit`` still
    propagate so an operator can stop a serial sweep.

    With ``trace_path`` set, the whole attempt runs inside an event-trace
    capture (see :mod:`repro.trace`): every solver/attack event lands in that
    file (overwritten on retry — latest attempt wins, like the store index)
    and the record carries the path under ``"trace"``.
    """
    start = time.perf_counter()
    start_cpu = time.process_time()
    tracing = (
        trace_to(trace_path, metadata={"job_kind": kind})
        if trace_path is not None
        else nullcontext()
    )
    with capture_solver_telemetry() as solver_telemetry, tracing:
        try:
            with job_deadline(job_timeout):
                payload = execute_job(kind, params)
            # Coerce to plain JSON types *inside* the attempt: a payload
            # holding e.g. a solver object or a lambda completes identically
            # whether the job ran in-process or in a pool worker (nothing
            # unpicklable ever crosses the pool boundary), and a payload JSON
            # cannot coerce at all (a circular reference) is this job's error
            # row in both modes rather than a pickling failure in one and a
            # crash in the other.
            payload = _jsonable(payload)
            record: Record = {"status": STATUS_COMPLETED, "payload": payload}
        except JobTimeout as exc:
            record = {
                "status": STATUS_TIMEOUT,
                "error": str(exc),
                "job_timeout": job_timeout,
            }
        except Exception as exc:
            record = {
                "status": STATUS_ERROR,
                "error": f"{type(exc).__name__}: {exc}",
                "traceback": traceback.format_exc(limit=16),
            }
    record.update(_resource_fields(start, start_cpu))
    # Next to the resource metrics: the attempt-wide solver telemetry (zeros
    # for job kinds that never touched a SolveSession).
    record["solver"] = solver_telemetry.to_dict()
    if trace_path is not None:
        record["trace"] = str(trace_path)
    return record


def job_trace_path(trace_dir: Union[str, Path], key: str) -> Path:
    """Per-job trace file inside ``trace_dir``.

    Named by the job's content-hash key, so concurrent shards of one
    campaign (disjoint key sets) never collide and a resumed/retried job
    overwrites its own stale trace.
    """
    return Path(trace_dir) / f"{key}.trace.jsonl"


def _pool_worker(
    job: Dict[str, object],
    job_timeout: Optional[float],
    trace_dir: Optional[str] = None,
) -> Record:
    """Top-level pool target (must be picklable for any start method)."""
    trace_path = (
        job_trace_path(trace_dir, str(job["key"])) if trace_dir else None
    )
    record = execute_job_attempt(
        str(job["kind"]), dict(job["params"]), job_timeout,  # type: ignore[arg-type]
        trace_path=trace_path,
    )
    record.update({"key": job["key"], "kind": job["kind"], "group": job["group"]})
    return record


@dataclass
class RunSummary:
    """What one ``run_campaign`` invocation did (not the store's full state)."""

    total: int = 0          #: jobs in the spec
    skipped: int = 0        #: jobs satisfied by existing records (resume)
    executed: int = 0       #: attempts actually run this invocation
    completed: int = 0
    timeouts: int = 0
    errors: int = 0
    wall_seconds: float = 0.0
    records: List[Record] = field(default_factory=list)

    def note(self, record: Record) -> None:
        self.executed += 1
        status = record.get("status")
        if status == STATUS_COMPLETED:
            self.completed += 1
        elif status == STATUS_TIMEOUT:
            self.timeouts += 1
        else:
            self.errors += 1
        self.records.append(record)

    @property
    def remaining(self) -> int:
        return self.total - self.skipped - self.executed


ProgressFn = Callable[[Record, int, int], None]


def run_campaign(
    spec: CampaignSpec,
    store: ResultStore,
    *,
    workers: int = 0,
    job_timeout: Optional[float] = None,
    resume: bool = True,
    retry_failed: bool = False,
    progress: Optional[ProgressFn] = None,
    write_manifest: bool = True,
    trace_dir: Union[str, Path, None] = None,
) -> RunSummary:
    """Execute ``spec``'s jobs, appending one record per finished attempt.

    Parameters
    ----------
    workers:
        ``0`` = serial in-process (deterministic reference); ``N >= 1`` = a
        process pool with ``N`` workers (``1`` still buys crash isolation).
    job_timeout:
        Per-job wall-clock budget in seconds (None = unbounded).
    resume:
        Skip jobs whose key already has a record (completed rows always;
        error/timeout rows too unless ``retry_failed``).
    progress:
        Optional ``fn(record, finished_count, pending_total)`` callback,
        invoked after each record is appended.
    trace_dir:
        Directory for per-job event traces (``<key>.trace.jsonl``, see
        :mod:`repro.trace`); None disables tracing.  The trace path is
        recorded on each result record under ``"trace"``.
    """
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    started = time.perf_counter()
    summary = RunSummary(total=len(spec.jobs))
    if trace_dir is not None:
        trace_dir = Path(trace_dir)
        trace_dir.mkdir(parents=True, exist_ok=True)
    if write_manifest and store.persistent:
        store.write_manifest(spec)

    pending: List[JobSpec] = []
    for job in spec.jobs:
        record = store.record_for(job.key) if resume else None
        if record is not None:
            if record.get("status") == STATUS_COMPLETED or not retry_failed:
                summary.skipped += 1
                continue
        pending.append(job)

    def finish(job: JobSpec, body: Record) -> None:
        record = dict(body)
        record.update({
            "key": job.key, "kind": job.kind, "group": job.group,
            "params": dict(job.params),
        })
        stored = store.append(record)
        summary.note(stored)
        if progress is not None:
            progress(stored, summary.executed, len(pending))

    if workers == 0:
        for job in pending:
            trace_path = (
                job_trace_path(trace_dir, job.key) if trace_dir is not None else None
            )
            finish(job, execute_job_attempt(
                job.kind, dict(job.params), job_timeout, trace_path=trace_path,
            ))
    else:
        _run_pool(pending, workers, job_timeout, finish, trace_dir)

    summary.wall_seconds = time.perf_counter() - started
    return summary


def _run_pool(
    pending: List[JobSpec],
    workers: int,
    job_timeout: Optional[float],
    finish: Callable[[JobSpec, Record], None],
    trace_dir: Optional[Path] = None,
) -> None:
    """Fan ``pending`` out over a process pool, surviving broken pools.

    A worker dying outright (segfault, OOM-kill) breaks the whole pool, and
    every still-unfinished future in the round fails with it — including
    innocent jobs that merely shared the pool with the culprit.  So no
    **pool-level** failure is judged in the shared round: every job whose
    future failed with :class:`BrokenProcessPool` (or was cancelled by the
    breakage) is re-run in a **single-job pool**, where a crash is
    attributable to exactly that job and is recorded as its ``error`` row.
    Jobs that finished before the breakage keep their records; an innocent
    job re-run after a breakage has at-least-once (not exactly-once)
    semantics.

    A future that fails with any *other* exception did not break the pool —
    something could not cross the process boundary (``pickle`` raised, the
    worker survived).  Payload coercion in :func:`execute_job_attempt` makes
    that unreachable for well-behaved job kinds, but re-running such a job
    in an isolated pool would fail identically either way, so it is recorded
    as an ``error`` row immediately rather than re-run.
    """
    suspects: List[JobSpec] = []

    def _boundary_error(exc: BaseException) -> Record:
        return {
            "status": STATUS_ERROR,
            "error": (
                "job failed at the process-pool boundary (its params or "
                "payload could not cross the process boundary, e.g. an "
                f"unpicklable value): {type(exc).__name__}: {exc}"
            ),
            "traceback": traceback.format_exc(limit=16),
            "runtime_seconds": 0.0,
            "cpu_seconds": 0.0,
            "max_rss_kb": None,
            "solver": SolverTelemetry().to_dict(),
        }

    # Pool workers receive the directory (a plain string stays picklable for
    # any start method) and derive each job's trace path themselves.
    trace_arg = str(trace_dir) if trace_dir is not None else None
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = {
            pool.submit(_pool_worker, job.to_dict(), job_timeout, trace_arg): job
            for job in pending
        }
        for future in as_completed(futures):
            job = futures[future]
            try:
                body = future.result()
            except (CancelledError, BrokenProcessPool):
                suspects.append(job)
                continue
            except Exception as exc:  # noqa: BLE001 - pool survived: job error
                body = _boundary_error(exc)
            finish(job, body)

    # Keep the spec's job order for the isolated re-runs (as_completed
    # yields in completion order).
    order = {job.key: index for index, job in enumerate(pending)}
    for job in sorted(suspects, key=lambda job: order[job.key]):
        with ProcessPoolExecutor(max_workers=1) as pool:
            future = pool.submit(_pool_worker, job.to_dict(), job_timeout, trace_arg)
            try:
                body = future.result()
            except (CancelledError, BrokenProcessPool) as exc:
                body = {
                    "status": STATUS_ERROR,
                    "error": (
                        "worker process died while running this job in an "
                        f"isolated pool: {type(exc).__name__}: {exc}"
                    ),
                    "runtime_seconds": 0.0,
                    "cpu_seconds": 0.0,
                    "max_rss_kb": None,
                    "solver": SolverTelemetry().to_dict(),
                }
            except Exception as exc:  # noqa: BLE001 - pool survived: job error
                body = _boundary_error(exc)
            finish(job, body)
