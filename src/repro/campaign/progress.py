"""Campaign progress reporting: per-group status and live run logging."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.campaign.spec import CampaignSpec
from repro.campaign.store import (
    STATUS_COMPLETED,
    STATUS_ERROR,
    STATUS_TIMEOUT,
    MergeSummary,
    Record,
    ResultStore,
)


@dataclass
class SolverTally:
    """Aggregate solver telemetry summed over a set of records."""

    solve_calls: int = 0
    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    learned_clauses: int = 0
    restarts: int = 0
    solve_seconds: float = 0.0
    records: int = 0  #: records that carried a solver block
    phase_seconds: Dict[str, float] = field(default_factory=dict)

    def add(self, block: object) -> None:
        """Fold one record's ``solver`` block (ignores records without one)."""
        if not isinstance(block, dict):
            return
        self.records += 1
        for name in ("solve_calls", "decisions", "propagations", "conflicts",
                     "learned_clauses", "restarts"):
            value = block.get(name, 0)
            if isinstance(value, (int, float)):
                setattr(self, name, getattr(self, name) + int(value))
        seconds = block.get("solve_seconds", 0.0)
        if isinstance(seconds, (int, float)):
            self.solve_seconds += float(seconds)
        phases = block.get("phase_seconds")
        if isinstance(phases, dict):
            for phase, value in phases.items():
                if isinstance(value, (int, float)):
                    label = str(phase)
                    self.phase_seconds[label] = (
                        self.phase_seconds.get(label, 0.0) + float(value)
                    )

    @property
    def conflict_rate(self) -> float:
        """Conflicts per solver second across the tallied records."""
        if self.solve_seconds <= 0.0:
            return 0.0
        return self.conflicts / self.solve_seconds


@dataclass
class GroupStatus:
    """Latest-record tallies for one aggregation group."""

    group: str
    total: int = 0
    completed: int = 0
    timeouts: int = 0
    errors: int = 0
    missing: int = 0
    solver: SolverTally = field(default_factory=SolverTally)

    @property
    def done(self) -> bool:
        return self.missing == 0


@dataclass
class CampaignStatus:
    """Where a campaign stands: spec size vs latest store records."""

    name: str
    total: int = 0
    completed: int = 0
    timeouts: int = 0
    errors: int = 0
    missing: int = 0
    shard: Optional[str] = None  #: "I/N" when the spec is one shard of a grid
    solver: SolverTally = field(default_factory=SolverTally)
    groups: List[GroupStatus] = field(default_factory=list)

    @property
    def remaining(self) -> int:
        """Jobs a plain ``resume`` would still run (missing cells only)."""
        return self.missing

    @property
    def finished(self) -> bool:
        return self.missing == 0


def _shard_text(spec: CampaignSpec) -> Optional[str]:
    info = spec.metadata.get("shard") if isinstance(spec.metadata, dict) else None
    if isinstance(info, dict) and "index" in info and "count" in info:
        return f"{int(info['index']) + 1}/{int(info['count'])}"
    return None


def campaign_status(spec: CampaignSpec, store: ResultStore) -> CampaignStatus:
    """Tally the latest record per job against the spec, overall and per group."""
    status = CampaignStatus(name=spec.name, total=len(spec.jobs),
                            shard=_shard_text(spec))
    by_group: Dict[str, GroupStatus] = {}
    for job in spec.jobs:
        group = by_group.get(job.group)
        if group is None:
            group = by_group[job.group] = GroupStatus(group=job.group)
            status.groups.append(group)
        group.total += 1
        record = store.record_for(job.key)
        if record is None:
            status.missing += 1
            group.missing += 1
            continue
        status.solver.add(record.get("solver"))
        group.solver.add(record.get("solver"))
        state = record.get("status")
        if state == STATUS_COMPLETED:
            status.completed += 1
            group.completed += 1
        elif state == STATUS_TIMEOUT:
            status.timeouts += 1
            group.timeouts += 1
        else:
            status.errors += 1
            group.errors += 1
    return status


def render_status(status: CampaignStatus) -> str:
    """Human-readable status block (the ``campaign status`` CLI output)."""
    lines = [
        f"campaign  : {status.name}",
    ]
    if status.shard:
        lines.append(f"shard     : {status.shard}")
    lines += [
        f"jobs      : {status.total}",
        f"completed : {status.completed}",
        f"timeouts  : {status.timeouts}",
        f"errors    : {status.errors}",
        f"remaining : {status.remaining}",
    ]
    if status.solver.records:
        tally = status.solver
        rate = (
            f", {tally.conflict_rate:,.0f} conflicts/s"
            if tally.solve_seconds > 0 else ""
        )
        lines.append(
            f"solver    : {tally.conflicts} conflicts, "
            f"{tally.decisions} decisions, {tally.propagations} propagations "
            f"({tally.solve_calls} solve calls, {tally.solve_seconds:.1f}s{rate})"
        )
        if tally.phase_seconds:
            # The live line: where solver time is going right now, from the
            # latest telemetry snapshot of every finished job so far — not
            # just an end-of-sweep aggregate.
            phases = ", ".join(
                f"{phase} {seconds:.1f}s"
                for phase, seconds in sorted(
                    tally.phase_seconds.items(),
                    key=lambda item: (-item[1], item[0]),
                )
            )
            lines.append(f"phases    : {phases}")
    if status.groups:
        lines.append("per group :")
        width = max(len(group.group or "-") for group in status.groups)
        for group in status.groups:
            name = (group.group or "-").ljust(width)
            lines.append(
                f"  {name}  {group.completed}/{group.total} completed"
                + (f", {group.timeouts} timeout" if group.timeouts else "")
                + (f", {group.errors} error" if group.errors else "")
                + (f", {group.missing} remaining" if group.missing else "")
            )
    return "\n".join(lines)


def render_merge_summary(summary: MergeSummary) -> str:
    """Human-readable block for ``campaign merge`` (mirrors render_status)."""
    lines = [
        f"merged    : {len(summary.sources)} source file(s) -> {summary.output}",
        f"records   : {summary.records_in} read, {summary.records_out} kept"
        + (f" ({summary.duplicates} duplicate(s) dropped)"
           if summary.duplicates else ""),
        f"keys      : {summary.keys}"
        + (f" ({summary.conflicts} with multiple attempts, latest wins)"
           if summary.conflicts else ""),
    ]
    return "\n".join(lines)


def _describe_record(record: Record) -> str:
    params = record.get("params") or {}
    label = record.get("kind", "?")
    runtime = record.get("runtime_seconds")
    runtime_text = f" in {runtime:.1f}s" if isinstance(runtime, (int, float)) else ""
    detail = ""
    if isinstance(params, dict):
        parts = [str(params[k]) for k in ("benchmark", "attack", "label") if k in params]
        if parts:
            detail = f" {'/'.join(parts)}"
    return f"{label}{detail} [{record.get('key', '?')}] {record.get('status')}{runtime_text}"


def progress_printer(
    log: Optional[Callable[[str], None]] = None,
) -> Callable[[Record, int, int], None]:
    """Build a ``run_campaign`` progress callback printing one line per job."""
    emit = log or (lambda message: print(message, flush=True))

    def _progress(record: Record, finished: int, pending_total: int) -> None:
        emit(f"  [{finished}/{pending_total}] {_describe_record(record)}")

    return _progress
