"""Append-only JSONL result store with an in-memory latest-wins index.

Store layout (one directory per campaign)::

    <store>/
      manifest.json     # the CampaignSpec (name, metadata, ordered jobs)
      results.jsonl     # one JSON record per finished job attempt

``results.jsonl`` is strictly append-only: a re-run of a job (``--retry-
failed``) appends a new record rather than rewriting history, and the index
keeps the **latest** record per job key.  A record whose ``status`` is
``"completed"`` carries the job's JSON payload; ``"error"`` and ``"timeout"``
records carry the failure context instead.  Appends are flushed + fsynced per
record so a killed run (crash, SIGKILL, CI timeout) loses at most the job in
flight — the foundation of ``campaign resume``.

``ResultStore(None)`` is an ephemeral in-memory store with the same API,
used when a driver just wants the executor semantics without persistence.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from repro.campaign.spec import CampaignSpec, _jsonable

MANIFEST_NAME = "manifest.json"
RESULTS_NAME = "results.jsonl"

#: Record statuses written by the executor.
STATUS_COMPLETED = "completed"
STATUS_ERROR = "error"
STATUS_TIMEOUT = "timeout"
STATUSES = (STATUS_COMPLETED, STATUS_ERROR, STATUS_TIMEOUT)

Record = Dict[str, object]


class ResultStore:
    """JSONL-backed (or in-memory) record store for one campaign."""

    def __init__(self, root: Union[str, Path, None]) -> None:
        self.root: Optional[Path] = Path(root) if root is not None else None
        self._records: List[Record] = []
        self._index: Dict[str, Record] = {}
        if self.root is not None and self.results_path.exists():
            self._load()

    # ------------------------------------------------------------------ paths
    @property
    def manifest_path(self) -> Path:
        if self.root is None:
            raise ValueError("in-memory store has no manifest path")
        return self.root / MANIFEST_NAME

    @property
    def results_path(self) -> Path:
        if self.root is None:
            raise ValueError("in-memory store has no results path")
        return self.root / RESULTS_NAME

    @property
    def persistent(self) -> bool:
        return self.root is not None

    # --------------------------------------------------------------- manifest
    def has_manifest(self) -> bool:
        return self.root is not None and self.manifest_path.exists()

    def write_manifest(self, spec: CampaignSpec) -> None:
        """Persist the spec so ``resume``/``status``/``report`` can rebuild it."""
        if self.root is None:
            return
        self.root.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(spec.to_dict(), indent=2, sort_keys=False)
        # Write-then-rename so a crash mid-write cannot truncate the manifest.
        tmp = self.manifest_path.with_suffix(".json.tmp")
        tmp.write_text(payload + "\n")
        os.replace(tmp, self.manifest_path)

    def read_manifest(self) -> CampaignSpec:
        if not self.has_manifest():
            raise FileNotFoundError(
                f"no campaign manifest at {self.root}; run "
                "`python -m repro campaign run --store ...` first"
            )
        return CampaignSpec.from_dict(json.loads(self.manifest_path.read_text()))

    # ---------------------------------------------------------------- records
    def _load(self) -> None:
        self._records = []
        self._index = {}
        with self.results_path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # A half-written trailing line from a killed run; every
                    # complete record before it is still usable.
                    continue
                self._ingest(record)

    def _ingest(self, record: Record) -> None:
        self._records.append(record)
        key = record.get("key")
        if isinstance(key, str):
            self._index[key] = record

    def append(self, record: Record) -> Record:
        """Append one finished-attempt record (latest record wins per key)."""
        record = dict(record)
        record.setdefault("finished_at", time.time())
        record.setdefault(
            "attempt",
            sum(1 for r in self._records if r.get("key") == record.get("key")) + 1,
        )
        record = _jsonable(record)  # type: ignore[assignment]
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
            with self.results_path.open("a", encoding="utf-8") as handle:
                handle.write(json.dumps(record, sort_keys=False) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
        self._ingest(record)
        return record

    def record_for(self, key: str) -> Optional[Record]:
        """Latest record for ``key`` (or None if the job never finished)."""
        return self._index.get(key)

    def load_index(self) -> Dict[str, Record]:
        """Latest record per job key."""
        return dict(self._index)

    def __iter__(self) -> Iterator[Record]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    # ------------------------------------------------------------------ stats
    def counts(self, spec: Optional[CampaignSpec] = None) -> Dict[str, int]:
        """Latest-record status counts (restricted to ``spec``'s jobs if given).

        Includes a ``"missing"`` bucket when a spec is supplied: jobs with no
        record at all — the cells a resume still has to run.
        """
        counts = {status: 0 for status in STATUSES}
        if spec is None:
            for record in self._index.values():
                status = str(record.get("status", STATUS_ERROR))
                counts[status] = counts.get(status, 0) + 1
            return counts
        counts["missing"] = 0
        for job in spec.jobs:
            record = self._index.get(job.key)
            if record is None:
                counts["missing"] += 1
            else:
                status = str(record.get("status", STATUS_ERROR))
                counts[status] = counts.get(status, 0) + 1
        return counts
