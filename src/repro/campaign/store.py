"""Append-only JSONL result store with an in-memory latest-wins index.

Store layout (one directory per campaign)::

    <store>/
      manifest.json         # the CampaignSpec (name, metadata, ordered jobs)
      results.jsonl         # canonical: one JSON record per finished attempt
      results-<shard>.jsonl # per-shard stores (written independently)

``results.jsonl`` is strictly append-only: a re-run of a job (``--retry-
failed``) appends a new record rather than rewriting history, and the index
keeps the **latest** record per job key.  A record whose ``status`` is
``"completed"`` carries the job's JSON payload; ``"error"`` and ``"timeout"``
records carry the failure context instead.  Appends are flushed + fsynced per
record so a killed run (crash, SIGKILL, CI timeout) loses at most the job in
flight — the foundation of ``campaign resume``.

**Sharding.**  A store opened with a ``shard`` tag (``ResultStore(root,
shard="2of4")``) appends to its own ``results-2of4.jsonl``; shards of the
same campaign therefore never contend on a writer, whether they run as
processes on one machine or on different hosts against copies of the store
directory.  :func:`merge_stores` folds any set of shard files (plus the
canonical file, plus files copied in from other hosts) back into one
canonical ``results.jsonl`` — latest ``finished_at`` wins per key, exact
duplicates are dropped, attempts are renumbered per key in finish order, and
the output ordering/encoding is fully deterministic, so re-merging the same
sources is byte-stable (and a merged report matches a serial run's report).

``ResultStore(None)`` is an ephemeral in-memory store with the same API,
used when a driver just wants the executor semantics without persistence.
"""

from __future__ import annotations

import json
import os
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Union

from repro.campaign.spec import CampaignSpec, _jsonable
from repro.jsonutil import read_jsonl_objects

MANIFEST_NAME = "manifest.json"
RESULTS_NAME = "results.jsonl"
#: Shard result files are ``results-<tag>.jsonl`` next to the canonical file.
SHARD_RESULTS_GLOB = "results-*.jsonl"
#: Shard tags become file-name components; keep them boring.
_SHARD_TAG_RE = re.compile(r"[A-Za-z0-9][A-Za-z0-9._-]*\Z")

#: Record statuses written by the executor.
STATUS_COMPLETED = "completed"
STATUS_ERROR = "error"
STATUS_TIMEOUT = "timeout"
STATUSES = (STATUS_COMPLETED, STATUS_ERROR, STATUS_TIMEOUT)

Record = Dict[str, object]


def _fsync_directory(path: Path) -> None:
    """Flush a directory entry so a rename survives power loss (best effort)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # platform without directory fds (or path raced away)
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def durable_replace(tmp: Path, target: Path, payload: str) -> None:
    """Write ``payload`` to ``tmp``, fsync it, rename over ``target``, fsync dir.

    The rename alone only guarantees the target is never *truncated*; without
    the fsyncs a crash between rename and writeback can publish an empty (or
    stale) file.  fsync-before-rename plus a directory fsync closes that hole.
    """
    with tmp.open("w", encoding="utf-8") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, target)
    _fsync_directory(target.parent)


def read_records(path: Union[str, Path]) -> List[Record]:
    """Parse one results JSONL file into records.

    An undecodable **final** line is tolerated silently — that is the
    half-written tail a killed run legitimately leaves behind.  An
    undecodable line anywhere *else* is mid-file corruption: the line is
    still skipped (the rest of the file is usable) but a warning naming the
    file and line number is emitted, so records never vanish without a trace.
    The policy itself lives in :func:`repro.jsonutil.read_jsonl_objects` and
    is shared with the trace reader.
    """
    return read_jsonl_objects(
        path, label="result record", file_label="store file"
    )


class ResultStore:
    """JSONL-backed (or in-memory) record store for one campaign.

    ``shard`` selects the per-shard results file (``results-<shard>.jsonl``)
    instead of the canonical ``results.jsonl``; the manifest path is shared
    by all shards of a store directory.
    """

    def __init__(
        self, root: Union[str, Path, None], *, shard: Optional[str] = None
    ) -> None:
        if shard is not None and not _SHARD_TAG_RE.match(shard):
            raise ValueError(
                f"invalid shard tag {shard!r}: expected letters/digits/._- "
                "(it becomes part of the results file name)"
            )
        self.root: Optional[Path] = Path(root) if root is not None else None
        self.shard: Optional[str] = shard
        self._records: List[Record] = []
        self._index: Dict[str, Record] = {}
        self._attempts: Dict[object, int] = {}
        if self.root is not None and self.results_path.exists():
            self._load()

    # ------------------------------------------------------------------ paths
    @property
    def manifest_path(self) -> Path:
        if self.root is None:
            raise ValueError("in-memory store has no manifest path")
        return self.root / MANIFEST_NAME

    @property
    def results_path(self) -> Path:
        if self.root is None:
            raise ValueError("in-memory store has no results path")
        if self.shard is None:
            return self.root / RESULTS_NAME
        return self.root / f"results-{self.shard}.jsonl"

    @property
    def persistent(self) -> bool:
        return self.root is not None

    # --------------------------------------------------------------- manifest
    def has_manifest(self) -> bool:
        return self.root is not None and self.manifest_path.exists()

    def write_manifest(self, spec: CampaignSpec) -> None:
        """Persist the spec so ``resume``/``status``/``report`` can rebuild it."""
        if self.root is None:
            return
        self.root.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(spec.to_dict(), indent=2, sort_keys=False) + "\n"
        # Concurrent shard runs of one campaign all (re)write the same
        # full-grid manifest; skip the write when the published bytes already
        # match rather than churning the file.
        if self.manifest_path.exists():
            try:
                if self.manifest_path.read_text() == payload:
                    return
            except OSError:
                pass
        # Write-then-rename (with fsyncs) so a crash mid-write can neither
        # truncate the manifest nor publish an empty one.  The tmp name is
        # per-process so concurrent shard runs cannot tear each other's
        # in-flight write; os.replace keeps the publish itself atomic.
        tmp = self.manifest_path.with_name(f"{MANIFEST_NAME}.tmp.{os.getpid()}")
        durable_replace(tmp, self.manifest_path, payload)

    def read_manifest(self) -> CampaignSpec:
        if not self.has_manifest():
            raise FileNotFoundError(
                f"no campaign manifest at {self.root}; run "
                "`python -m repro campaign run --store ...` first"
            )
        return CampaignSpec.from_dict(json.loads(self.manifest_path.read_text()))

    # ---------------------------------------------------------------- records
    def _load(self) -> None:
        self._records = []
        self._index = {}
        self._attempts = {}
        for record in read_records(self.results_path):
            self._ingest(record)

    def _ingest(self, record: Record) -> None:
        self._records.append(record)
        key = record.get("key")
        attempt = record.get("attempt")
        try:
            seen = self._attempts.get(key, 0) + 1
            if isinstance(attempt, int) and attempt > seen:
                seen = attempt
            self._attempts[key] = seen
        except TypeError:  # unhashable key value; keep the record anyway
            pass
        if isinstance(key, str):
            self._index[key] = record

    def _next_attempt(self, key: object) -> int:
        try:
            return self._attempts.get(key, 0) + 1
        except TypeError:
            return 1

    def append(self, record: Record) -> Record:
        """Append one finished-attempt record (latest record wins per key)."""
        record = dict(record)
        record.setdefault("finished_at", time.time())
        # O(1) per append: the per-key counter is maintained by _ingest
        # instead of rescanning every stored record (which made a sweep of n
        # jobs O(n^2) in store appends).
        record.setdefault("attempt", self._next_attempt(record.get("key")))
        record = _jsonable(record)  # type: ignore[assignment]
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
            with self.results_path.open("a", encoding="utf-8") as handle:
                handle.write(json.dumps(record, sort_keys=False) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
        self._ingest(record)
        return record

    def record_for(self, key: str) -> Optional[Record]:
        """Latest record for ``key`` (or None if the job never finished)."""
        return self._index.get(key)

    def load_index(self) -> Dict[str, Record]:
        """Latest record per job key."""
        return dict(self._index)

    def __iter__(self) -> Iterator[Record]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    # ------------------------------------------------------------------ stats
    def counts(self, spec: Optional[CampaignSpec] = None) -> Dict[str, int]:
        """Latest-record status counts (restricted to ``spec``'s jobs if given).

        Includes a ``"missing"`` bucket when a spec is supplied: jobs with no
        record at all — the cells a resume still has to run.
        """
        counts = {status: 0 for status in STATUSES}
        if spec is None:
            for record in self._index.values():
                status = str(record.get("status", STATUS_ERROR))
                counts[status] = counts.get(status, 0) + 1
            return counts
        counts["missing"] = 0
        for job in spec.jobs:
            record = self._index.get(job.key)
            if record is None:
                counts["missing"] += 1
            else:
                status = str(record.get("status", STATUS_ERROR))
                counts[status] = counts.get(status, 0) + 1
        return counts


# ------------------------------------------------------------------- merging
@dataclass
class MergeSummary:
    """What one :func:`merge_stores` call folded together."""

    output: Path
    sources: List[Path] = field(default_factory=list)
    records_in: int = 0       #: records read across all sources
    records_out: int = 0      #: records written to the canonical file
    duplicates: int = 0       #: exact duplicates dropped (ignoring attempt)
    keys: int = 0             #: distinct job keys in the merged store
    conflicts: int = 0        #: keys with >1 surviving record (latest wins)
    pruned: List[Path] = field(default_factory=list)  #: shard files deleted by --prune


def _record_identity(record: Record) -> str:
    """Canonical identity of a record, ignoring the ``attempt`` counter.

    Merging renumbers attempts (each shard counted its own attempts from 1),
    so two copies of the same attempt — e.g. the canonical file from an
    earlier merge plus the shard file it was merged from — must compare
    equal despite differing ``attempt`` fields.
    """
    probe = {k: v for k, v in record.items() if k != "attempt"}
    return json.dumps(probe, sort_keys=True, separators=(",", ":"), default=str)


def shard_result_files(root: Union[str, Path]) -> List[Path]:
    """The per-shard results files inside a store directory, sorted by name."""
    return sorted(Path(root).glob(SHARD_RESULTS_GLOB))


def merge_sources(
    root: Union[str, Path], extra: Sequence[Union[str, Path]] = ()
) -> List[Path]:
    """Resolve the result files a merge of ``root`` folds together.

    The canonical ``results.jsonl`` (if present) and every shard file in the
    store directory, plus ``extra`` entries — each either a results file or
    another store directory (e.g. one copied over from a different host).
    """
    root = Path(root)
    sources: List[Path] = []
    canonical = root / RESULTS_NAME
    if canonical.exists():
        sources.append(canonical)
    sources.extend(shard_result_files(root))
    for entry in extra:
        path = Path(entry)
        if path.is_dir():
            found = []
            candidate = path / RESULTS_NAME
            if candidate.exists():
                found.append(candidate)
            found.extend(shard_result_files(path))
            if not found:
                # An explicitly-named source that contributes nothing is an
                # operator mistake (wrong directory level, typo'd rsync
                # destination), not a store with zero results — failing loud
                # beats a silently partial merge.
                raise FileNotFoundError(
                    f"merge source {path} is a directory with no "
                    f"{RESULTS_NAME} and no {SHARD_RESULTS_GLOB} shard files"
                )
            sources.extend(found)
        elif path.exists():
            sources.append(path)
        else:
            raise FileNotFoundError(f"merge source {path} does not exist")
    return sources


class MergeVerificationError(RuntimeError):
    """The written canonical store does not cover a source record.

    Raised by ``merge_stores(..., prune=True)`` *before* any shard file is
    deleted — a failed or unverifiable fold must never destroy its inputs.
    """


def merge_stores(
    root: Union[str, Path],
    extra: Sequence[Union[str, Path]] = (),
    *,
    prune: bool = False,
) -> MergeSummary:
    """Fold shard stores into the canonical ``results.jsonl`` under ``root``.

    Conflict resolution is **latest-wins per key**: records are ordered by
    ``finished_at`` (ties broken by key, then by canonical content), so the
    store's latest-record index resolves exactly as if the attempts had been
    appended to a single store in finish order.  ``attempt`` is renumbered
    per key in that order.  Exact duplicates (same record up to ``attempt``)
    are dropped, which makes the merge idempotent: re-merging the canonical
    file with the shard files it came from is a byte-identical no-op.

    ``prune=True`` deletes the per-shard ``results-*.jsonl`` files inside
    the store directory after — and only after — the written canonical file
    has been read back and **verified** to contain every record of every
    source (up to ``attempt`` renumbering).  If verification fails, a
    :class:`MergeVerificationError` is raised and nothing is deleted; if the
    merge itself fails, the exception propagates before any write or
    deletion.  Extra sources (files or stores copied in from other hosts)
    are never pruned — only this store's own shard files are.
    """
    root = Path(root)
    sources = merge_sources(root, extra)
    if not sources:
        raise FileNotFoundError(
            f"nothing to merge under {root}: no {RESULTS_NAME} and no "
            f"{SHARD_RESULTS_GLOB} shard files"
        )

    summary = MergeSummary(output=root / RESULTS_NAME, sources=list(sources))
    merged: Dict[str, Record] = {}
    for source in sources:
        for record in read_records(source):
            summary.records_in += 1
            identity = _record_identity(record)
            if identity in merged:
                summary.duplicates += 1
            else:
                merged[identity] = record

    def _finish_order(item):
        identity, record = item
        finished = record.get("finished_at")
        finished = float(finished) if isinstance(finished, (int, float)) else 0.0
        return (finished, str(record.get("key", "")), identity)

    ordered = [record for _, record in sorted(merged.items(), key=_finish_order)]
    attempts: Dict[object, int] = {}
    lines: List[str] = []
    for record in ordered:
        key = record.get("key")
        try:
            attempts[key] = attempts.get(key, 0) + 1
            record = {**record, "attempt": attempts[key]}
        except TypeError:
            pass
        lines.append(json.dumps(record, sort_keys=True, separators=(",", ":"),
                                default=str))
    summary.records_out = len(ordered)
    summary.keys = len(attempts)
    summary.conflicts = sum(1 for count in attempts.values() if count > 1)

    root.mkdir(parents=True, exist_ok=True)
    payload = "".join(line + "\n" for line in lines)
    tmp = root / f"{RESULTS_NAME}.tmp.{os.getpid()}"
    durable_replace(tmp, root / RESULTS_NAME, payload)

    if prune:
        _verify_and_prune(root, sources, summary)
    return summary


def _verify_and_prune(
    root: Path, sources: Sequence[Path], summary: MergeSummary
) -> None:
    """Delete ``root``'s shard files once the canonical fold is verified.

    Verification re-reads the canonical file *from disk* (not the in-memory
    merge state) and checks that every source record's identity — the
    record minus its shard-local ``attempt`` counter — survived the fold.
    Only then are the store's own ``results-<shard>.jsonl`` files unlinked;
    a verification failure refuses with :class:`MergeVerificationError` and
    leaves every file in place.
    """
    canonical = root / RESULTS_NAME
    merged_identities = {
        _record_identity(record) for record in read_records(canonical)
    }
    for source in sources:
        if source == canonical:
            continue
        for line_number, record in enumerate(read_records(source), start=1):
            if _record_identity(record) not in merged_identities:
                raise MergeVerificationError(
                    f"refusing to prune: record #{line_number} of {source} is "
                    f"not covered by the merged {canonical}; the fold looks "
                    "incomplete, so the shard files are kept"
                )
    # Delete only shard files that were actually merge sources — a shard
    # file that appeared after the merge enumerated its sources (a straggler
    # shard run, a late rsync) was neither folded nor verified, so it must
    # survive for the next merge.
    shard_files = set(shard_result_files(root)) & set(sources)
    for source in sorted(shard_files):
        try:
            source.unlink()
        except OSError as exc:
            raise MergeVerificationError(
                f"verified fold but failed to delete shard file {source}: {exc}"
            ) from exc
        summary.pruned.append(source)
    _fsync_directory(root)


def measured_job_costs(
    store: Union["ResultStore", str, Path],
    *,
    metric: str = "cpu_seconds",
) -> Dict[str, float]:
    """Per-job-key cost table from a store's latest records.

    The returned ``{job key: cost}`` mapping feeds cost-balanced sharding
    (``CampaignSpec.shard(..., strategy="cost", costs=...)``): run the grid
    once (or let a partial sweep finish), then shard the next sweep by the
    measured ``cpu_seconds``.  Records without a usable metric (errors
    recorded before the job ran, foreign records) are skipped — the shard
    falls back to the mean cost for those jobs.
    """
    if not isinstance(store, ResultStore):
        store = ResultStore(store)
    costs: Dict[str, float] = {}
    for key, record in store.load_index().items():
        value = record.get(metric)
        if isinstance(value, (int, float)) and value >= 0:
            costs[key] = float(value)
    return costs
