"""``repro.campaign`` — parallel, resumable experiment-campaign orchestration.

The paper's evaluation is a grid of independent cells (locking scheme x
benchmark x attack x seed).  This package runs such grids as *campaigns*:

* :mod:`~repro.campaign.spec` — declarative job grids with stable
  content-hashed job keys;
* :mod:`~repro.campaign.jobs` — the job-kind registry worker processes use
  to turn a spec cell into a JSON payload;
* :mod:`~repro.campaign.store` — an append-only JSONL result store with a
  latest-wins index (the basis of resume), per-shard result files and the
  shard-merge tooling behind multi-host sweeps;
* :mod:`~repro.campaign.executor` — serial or process-pool execution with
  per-job wall-clock timeouts, crash isolation and per-attempt resource
  metrics (wall/CPU time, peak RSS);
* :mod:`~repro.campaign.progress` — status tallies and live run logging.

The experiment drivers in :mod:`repro.experiments` declare their grids as
campaign specs and execute through this package; the ``python -m repro
campaign`` CLI drives whole sweeps (run / status / resume / report).
"""

from repro.campaign.executor import (
    JobTimeout,
    RunSummary,
    execute_job_attempt,
    job_deadline,
    run_campaign,
)
from repro.campaign.jobs import execute_job, register_job_kind, resolve_job_kind
from repro.campaign.progress import (
    CampaignStatus,
    GroupStatus,
    campaign_status,
    progress_printer,
    render_merge_summary,
    render_status,
)
from repro.campaign.spec import (
    CampaignSpec,
    JobSpec,
    canonical_params,
    job_key,
    shard_label,
)
from repro.campaign.store import (
    STATUS_COMPLETED,
    STATUS_ERROR,
    STATUS_TIMEOUT,
    MergeSummary,
    MergeVerificationError,
    ResultStore,
    measured_job_costs,
    merge_sources,
    merge_stores,
    read_records,
    shard_result_files,
)

__all__ = [
    "CampaignSpec",
    "CampaignStatus",
    "GroupStatus",
    "JobSpec",
    "JobTimeout",
    "MergeSummary",
    "MergeVerificationError",
    "ResultStore",
    "RunSummary",
    "STATUS_COMPLETED",
    "STATUS_ERROR",
    "STATUS_TIMEOUT",
    "campaign_status",
    "canonical_params",
    "execute_job",
    "execute_job_attempt",
    "job_deadline",
    "job_key",
    "measured_job_costs",
    "merge_sources",
    "merge_stores",
    "progress_printer",
    "read_records",
    "register_job_kind",
    "render_merge_summary",
    "render_status",
    "resolve_job_kind",
    "run_campaign",
    "shard_label",
    "shard_result_files",
]
