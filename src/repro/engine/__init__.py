"""Bit-parallel packed simulation engine.

The engine compiles a :class:`~repro.netlist.circuit.Circuit` once into a
flat, levelized program over integer net slots (no string lookups in the
inner loop) and evaluates W input vectors per pass by packing them into
arbitrary-width Python ints: bit ``j`` of a net's word is the net's value
under vector ``j``.  One pass of bitwise word operations then replaces W
scalar evaluations, which turns the dominant cost of the oracle-guided
attacks, the random equivalence checks and the switching-activity model
from O(gates x vectors) Python dispatch into O(gates) word arithmetic.

Layers
------
* :mod:`repro.engine.compiler` — Circuit -> :class:`CompiledCircuit` (flat
  op list, levelization, exec-generated bitwise kernels);
* :mod:`repro.engine.packed` — :class:`PackedSimulator` plus the
  pack/unpack transpose helpers between per-net words and per-vector dicts;
* :mod:`repro.engine.batch_oracle` — batched drop-in oracles preserving the
  query-count accounting of :mod:`repro.attacks.oracle`;
* :mod:`repro.engine.equivalence` — packed random equivalence checking and
  packed toggle/activity counting.

The scalar simulators in :mod:`repro.sim` remain the reference
implementation; the engine is cross-checked against them bit-for-bit by the
property tests.
"""

from repro.engine.compiler import CompiledCircuit, compile_circuit
from repro.engine.packed import (
    PackedSimulator,
    pack_bits,
    pack_vectors,
    unpack_bits,
    unpack_vectors,
)
from repro.engine.batch_oracle import (
    BatchedCombinationalOracle,
    BatchedSequentialOracle,
)
from repro.engine.equivalence import (
    packed_random_equivalence_check,
    packed_sequential_equivalence_check,
    packed_toggle_counts,
)

__all__ = [
    "CompiledCircuit",
    "compile_circuit",
    "PackedSimulator",
    "pack_bits",
    "unpack_bits",
    "pack_vectors",
    "unpack_vectors",
    "BatchedCombinationalOracle",
    "BatchedSequentialOracle",
    "packed_random_equivalence_check",
    "packed_sequential_equivalence_check",
    "packed_toggle_counts",
]
