"""Circuit -> flat levelized program compilation.

Compilation assigns every net a dense integer *slot* (primary inputs first,
then flip-flop Q pins, then gate outputs in topological order) and lowers
every gate to one bitwise operation over packed words.  Inversions (NOT,
NAND, NOR, XNOR, CONST1) are handled by XOR-ing with the batch mask
``(1 << width) - 1`` so the packed words never grow sign bits; the MUX
kernel ``(d0 & ~sel) | (d1 & sel)`` needs no mask because both data words
are already mask-confined.

The hot path is an ``exec``-generated kernel: one Python function whose body
is the straight-line sequence of slot assignments (chunked so pathological
circuits never hit compiler limits).  A table-driven interpreter over the
same op list is kept as a readable reference (``codegen=False``) and is what
the unit tests diff against the generated code.

Two codegen targets lower the same :class:`PackedOp` program:

* **bigint** (:func:`kernel_sources`) — slot assignments over arbitrary-
  width Python ints, evaluated per ≤128-lane tile;
* **numpy** (:func:`numpy_kernel_sources`) — in-place ``uint64`` ufunc
  calls over rows of one ``(num_slots, n_words)`` array, evaluating
  thousands of lanes per pass.  ``~`` is exact on ``uint64`` (no sign
  bits), so inversions are plain ``invert`` calls and only the final
  partial word needs the mask fix-up, which the runtime applies once per
  pass.  The ufuncs are passed in as parameters (``band``/``bor``/
  ``bxor``/``binv``) so the generated source contains no imports or
  attribute access and stays verifiable by :mod:`repro.check.program`.

Both targets are verified structurally *before* exec under
``REPRO_CHECK_KERNELS=1`` (always-on in the test suite).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.netlist.circuit import Circuit, CircuitError
from repro.netlist.gates import GateType

#: Maximum number of ops lowered into one generated kernel function.
_KERNEL_CHUNK = 4096

#: Parameter list of a generated numpy kernel: the slot buffer, the
#: canonical lane-mask row, and the four ufuncs the program may call.
NUMPY_KERNEL_PARAMS = ("v", "mask", "band", "bor", "bxor", "binv")

# Guarded numpy import, resolved once.  ``None`` = not probed yet,
# ``False`` = unavailable; tests monkeypatch this to ``False`` to exercise
# the degradation paths without uninstalling numpy.
_numpy_cache = None


def numpy_module():
    """The numpy module, or ``None`` when it cannot be imported."""
    global _numpy_cache
    if _numpy_cache is None:
        try:
            import numpy

            _numpy_cache = numpy
        except ImportError:  # pragma: no cover - depends on environment
            _numpy_cache = False
    return _numpy_cache or None


def numpy_available() -> bool:
    """True when the numpy engine backend can run in this environment."""
    return numpy_module() is not None


def require_numpy(context: str):
    """Return numpy or raise a :class:`CircuitError` naming the caller."""
    module = numpy_module()
    if module is None:
        raise CircuitError(
            f"{context} requires numpy, which is not installed; use "
            "backend='bigint' (or 'auto', which falls back to the tiled "
            "bigint path) instead"
        )
    return module


@dataclass(frozen=True)
class PackedOp:
    """One flat operation: evaluate a gate into its output slot."""

    gtype: GateType
    out_slot: int
    in_slots: Tuple[int, ...]
    level: int


def _op_expression(op: PackedOp) -> str:
    """Python expression computing ``op`` over the packed-word list ``v``."""
    ins = [f"v[{slot}]" for slot in op.in_slots]
    gtype = op.gtype
    if gtype is GateType.BUF:
        return ins[0]
    if gtype is GateType.NOT:
        return f"mask ^ {ins[0]}"
    if gtype is GateType.AND:
        return " & ".join(ins)
    if gtype is GateType.NAND:
        return f"mask ^ ({' & '.join(ins)})"
    if gtype is GateType.OR:
        return " | ".join(ins)
    if gtype is GateType.NOR:
        return f"mask ^ ({' | '.join(ins)})"
    if gtype is GateType.XOR:
        return " ^ ".join(ins)
    if gtype is GateType.XNOR:
        return f"mask ^ ({' ^ '.join(ins)})"
    if gtype is GateType.MUX:
        sel, d0, d1 = ins
        return f"({d0} & ~{sel}) | ({d1} & {sel})"
    if gtype is GateType.CONST0:
        return "0"
    if gtype is GateType.CONST1:
        return "mask"
    raise CircuitError(f"unsupported gate type {gtype!r}")  # pragma: no cover


def kernel_sources(ops: Sequence[PackedOp]) -> Iterator[Tuple[int, str]]:
    """Yield ``(start_index, source)`` per generated kernel chunk.

    The single source of the synthesized kernel text: both the exec path
    (:func:`_build_kernels`) and the pre-exec structural verifier
    (:func:`repro.check.program.verify_compiled`) consume this, so what is
    verified is byte-for-byte what runs.
    """
    for start in range(0, max(len(ops), 1), _KERNEL_CHUNK):
        lines = ["def _kernel(v, mask):"]
        chunk = ops[start:start + _KERNEL_CHUNK]
        for op in chunk:
            lines.append(f"    v[{op.out_slot}] = {_op_expression(op)}")
        if not chunk:
            lines.append("    pass")
        yield start, "\n".join(lines)


def _build_kernels(ops: Sequence[PackedOp]) -> List[Callable[[List[int], int], None]]:
    """exec-compile the op list into straight-line kernel functions."""
    kernels: List[Callable[[List[int], int], None]] = []
    for start, source in kernel_sources(ops):
        namespace: Dict[str, object] = {}
        exec(compile(source, f"<repro.engine kernel@{start}>", "exec"), namespace)
        kernels.append(namespace["_kernel"])  # type: ignore[arg-type]
    return kernels


def _numpy_chain(ufunc: str, ins: Sequence[str], out: str) -> List[str]:
    """Left-fold ``ins`` through ``ufunc`` into the row ``out``, in place.

    A single input degenerates to an idempotent self-application of ``band``
    (``x & x == x``), which doubles as the row copy — matching the bigint
    target, where a one-input AND/OR/XOR all lower to the bare operand.
    """
    if len(ins) == 1:
        return [f"band({ins[0]}, {ins[0]}, {out})"]
    statements = [f"{ufunc}({ins[0]}, {ins[1]}, {out})"]
    for operand in ins[2:]:
        statements.append(f"{ufunc}({out}, {operand}, {out})")
    return statements


def _numpy_op_statements(op: PackedOp) -> List[str]:
    """Statements computing ``op`` over rows of the uint64 buffer ``v``.

    Every statement is either an in-place ufunc call whose *last* argument
    is the output row (no temporaries, no allocation in the hot loop) or a
    broadcast constant assignment.  ``~`` is exact on uint64, so the
    inverting gate types end in one ``binv`` instead of the bigint target's
    ``mask ^`` — the final partial word is fixed up once per pass by the
    runtime, not per gate.
    """
    out = f"v[{op.out_slot}]"
    ins = [f"v[{slot}]" for slot in op.in_slots]
    gtype = op.gtype
    if gtype in (GateType.BUF, GateType.AND):
        return _numpy_chain("band", ins, out)
    if gtype is GateType.NOT:
        return [f"binv({ins[0]}, {out})"]
    if gtype is GateType.NAND:
        return _numpy_chain("band", ins, out) + [f"binv({out}, {out})"]
    if gtype is GateType.OR:
        return _numpy_chain("bor", ins, out)
    if gtype is GateType.NOR:
        return _numpy_chain("bor", ins, out) + [f"binv({out}, {out})"]
    if gtype is GateType.XOR:
        return _numpy_chain("bxor", ins, out)
    if gtype is GateType.XNOR:
        return _numpy_chain("bxor", ins, out) + [f"binv({out}, {out})"]
    if gtype is GateType.MUX:
        # mux(sel, d0, d1) = d0 ^ (sel & (d0 ^ d1)): three in-place ufuncs,
        # no inverted temporary for ~sel.
        sel, d0, d1 = ins
        return [
            f"bxor({d0}, {d1}, {out})",
            f"band({out}, {sel}, {out})",
            f"bxor({out}, {d0}, {out})",
        ]
    if gtype is GateType.CONST0:
        return [f"{out} = 0"]
    if gtype is GateType.CONST1:
        return [f"{out} = mask"]
    raise CircuitError(f"unsupported gate type {gtype!r}")  # pragma: no cover


def numpy_kernel_sources(ops: Sequence[PackedOp]) -> Iterator[Tuple[int, str]]:
    """Yield ``(start_index, source)`` per generated numpy kernel chunk.

    The numpy twin of :func:`kernel_sources` and, like it, the single
    source of the synthesized text: both the exec path and
    :func:`repro.check.program.verify_compiled_numpy` consume this, so what
    is verified is byte-for-byte what runs.  Chunks split on op boundaries,
    so a gate's statement chain never spans two kernels.
    """
    header = f"def _kernel({', '.join(NUMPY_KERNEL_PARAMS)}):"
    for start in range(0, max(len(ops), 1), _KERNEL_CHUNK):
        lines = [header]
        chunk = ops[start:start + _KERNEL_CHUNK]
        for op in chunk:
            lines.extend(f"    {statement}" for statement in _numpy_op_statements(op))
        if not chunk:
            lines.append("    pass")
        yield start, "\n".join(lines)


def _build_numpy_kernels(ops: Sequence[PackedOp]) -> List[Callable]:
    """exec-compile the op list into in-place uint64 ufunc kernels."""
    kernels: List[Callable] = []
    for start, source in numpy_kernel_sources(ops):
        namespace: Dict[str, object] = {}
        exec(compile(source, f"<repro.engine numpy kernel@{start}>", "exec"), namespace)
        kernels.append(namespace["_kernel"])  # type: ignore[arg-type]
    return kernels


def _interpret_op(op: PackedOp, values: List[int], mask: int) -> None:
    """Reference interpreter for one op (mirrors :func:`_op_expression`)."""
    gtype = op.gtype
    ins = op.in_slots
    if gtype is GateType.BUF:
        word = values[ins[0]]
    elif gtype is GateType.NOT:
        word = mask ^ values[ins[0]]
    elif gtype in (GateType.AND, GateType.NAND):
        word = mask
        for slot in ins:
            word &= values[slot]
        if gtype is GateType.NAND:
            word ^= mask
    elif gtype in (GateType.OR, GateType.NOR):
        word = 0
        for slot in ins:
            word |= values[slot]
        if gtype is GateType.NOR:
            word ^= mask
    elif gtype in (GateType.XOR, GateType.XNOR):
        word = 0
        for slot in ins:
            word ^= values[slot]
        if gtype is GateType.XNOR:
            word ^= mask
    elif gtype is GateType.MUX:
        sel, d0, d1 = (values[s] for s in ins)
        word = (d0 & ~sel) | (d1 & sel)
    elif gtype is GateType.CONST0:
        word = 0
    elif gtype is GateType.CONST1:
        word = mask
    else:  # pragma: no cover
        raise CircuitError(f"unsupported gate type {gtype!r}")
    values[op.out_slot] = word


@dataclass
class CompiledCircuit:
    """A circuit lowered to a flat slot-indexed program.

    Attributes
    ----------
    circuit:
        The source circuit (kept for metadata; the program never reads it).
    slot_of:
        Net name -> slot index for every driven net.
    net_names:
        Inverse of ``slot_of`` (slot index -> net name).
    input_slots:
        Slots of ``circuit.inputs`` in declaration order.
    output_slots:
        Slots of ``circuit.outputs`` in declaration order.
    state_items:
        ``(q_net, slot, init)`` per flip-flop in insertion order.
    dff_d_slots:
        ``(q_net, d_slot)`` per flip-flop: where each next-state bit lives
        after a pass.
    ops:
        The flat program, sorted by level (a valid evaluation order).
    num_levels:
        Depth of the levelization (0 for a gate-free circuit).
    level_of:
        Net name -> level; sources (inputs, DFF Qs) are level 0 and a gate
        is ``1 + max(level of fanins)``.
    """

    circuit: Circuit
    slot_of: Dict[str, int]
    net_names: List[str]
    input_slots: List[int]
    output_slots: List[int]
    state_items: List[Tuple[str, int, int]]
    dff_d_slots: List[Tuple[str, int]]
    ops: List[PackedOp]
    num_levels: int
    level_of: Dict[str, int]
    _kernels: List[Callable[[List[int], int], None]] = field(default_factory=list)
    _numpy_kernels: Optional[List[Callable]] = field(default=None)

    @property
    def num_slots(self) -> int:
        return len(self.net_names)

    def run(self, values: List[int], mask: int) -> None:
        """Evaluate the program in place over ``values`` (one word per slot)."""
        if self._kernels:
            for kernel in self._kernels:
                kernel(values, mask)
        else:
            for op in self.ops:
                _interpret_op(op, values, mask)

    def run_interpreted(self, values: List[int], mask: int) -> None:
        """Reference evaluation path bypassing the generated kernels."""
        for op in self.ops:
            _interpret_op(op, values, mask)

    def numpy_kernels(self, *, verify: Optional[bool] = None) -> List[Callable]:
        """The numpy-target kernels, built (and cached) on first use.

        Like :func:`compile_circuit`, ``verify=None`` defers to the
        ``REPRO_CHECK_KERNELS=1`` environment flag; when armed, the
        generated source is proven straight-line/levelized/bitwise-only by
        :func:`repro.check.program.verify_compiled_numpy` before it is
        ``exec``-ed.  Building the kernels needs no numpy — only running
        them does.
        """
        if self._numpy_kernels is None:
            if verify is None:
                verify = os.environ.get("REPRO_CHECK_KERNELS", "") == "1"
            if verify:
                from repro.check.program import verify_compiled_numpy

                verify_compiled_numpy(self)
            self._numpy_kernels = _build_numpy_kernels(self.ops)
        return self._numpy_kernels

    def run_numpy(self, buffer, mask_row) -> None:
        """Evaluate the program in place over a ``(num_slots, n_words)``
        uint64 array (one row per slot, one column per 64-lane word).

        ``mask_row`` is the canonical lane mask (all-ones words, partial
        final word); the caller owns the final partial-word fix-up, since
        the numpy target leaves garbage above the lane width in inverted
        rows (``~`` is exact on uint64, so correctness of the live lanes is
        unaffected).
        """
        module = require_numpy("CompiledCircuit.run_numpy")
        kernels = self.numpy_kernels()
        band = module.bitwise_and
        bor = module.bitwise_or
        bxor = module.bitwise_xor
        binv = module.invert
        for kernel in kernels:
            kernel(buffer, mask_row, band, bor, bxor, binv)


def compile_circuit(
    circuit: Circuit,
    *,
    codegen: bool = True,
    verify: Optional[bool] = None,
) -> CompiledCircuit:
    """Compile ``circuit`` into a :class:`CompiledCircuit`.

    Raises :class:`CircuitError` for combinational cycles (via
    :meth:`Circuit.topological_order`) and for gate fanins with no driver
    (where the scalar simulator would fail at evaluation time instead).

    ``verify=True`` runs :func:`repro.check.program.verify_compiled` over
    the generated kernel source *before* it is ``exec``-ed, raising
    :class:`repro.check.program.KernelVerificationError` (a
    :class:`CircuitError`) if the program is not straight-line, levelized,
    bitwise-only code.  The default ``None`` defers to the
    ``REPRO_CHECK_KERNELS=1`` environment flag (always set by the test
    suite, opt-in at runtime).
    """
    slot_of: Dict[str, int] = {}
    net_names: List[str] = []

    def allocate(net: str) -> int:
        slot = len(net_names)
        slot_of[net] = slot
        net_names.append(net)
        return slot

    input_slots = [allocate(net) for net in circuit.inputs]
    state_items = [(q, allocate(q), ff.init) for q, ff in circuit.dffs.items()]

    order = circuit.topological_order()
    for out in order:
        allocate(out)

    level_of: Dict[str, int] = {net: 0 for net in circuit.inputs}
    level_of.update({q: 0 for q in circuit.dffs})
    ops: List[PackedOp] = []
    for out in order:
        gate = circuit.gates[out]
        in_slots = []
        level = 0
        for src in gate.inputs:
            if src not in slot_of:
                raise CircuitError(
                    f"gate {out!r} reads net {src!r} which has no driver"
                )
            in_slots.append(slot_of[src])
            level = max(level, level_of[src])
        level_of[out] = level + 1 if gate.inputs else 1
        ops.append(
            PackedOp(
                gtype=gate.gtype,
                out_slot=slot_of[out],
                in_slots=tuple(in_slots),
                level=level_of[out],
            )
        )
    ops.sort(key=lambda op: (op.level, op.out_slot))

    output_slots = []
    for net in circuit.outputs:
        if net not in slot_of:
            raise CircuitError(f"primary output {net!r} has no driver")
        output_slots.append(slot_of[net])

    dff_d_slots = []
    for q, ff in circuit.dffs.items():
        if ff.d not in slot_of:
            raise CircuitError(f"DFF {q!r} reads net {ff.d!r} which has no driver")
        dff_d_slots.append((q, slot_of[ff.d]))

    compiled = CompiledCircuit(
        circuit=circuit,
        slot_of=slot_of,
        net_names=net_names,
        input_slots=input_slots,
        output_slots=output_slots,
        state_items=state_items,
        dff_d_slots=dff_d_slots,
        ops=ops,
        num_levels=max((op.level for op in ops), default=0),
        level_of=level_of,
    )
    if codegen:
        if verify is None:
            verify = os.environ.get("REPRO_CHECK_KERNELS", "") == "1"
        if verify:
            from repro.check.program import verify_compiled

            verify_compiled(compiled)
        compiled._kernels = _build_kernels(ops)
    return compiled
