"""Batched oracle adapters.

Drop-in replacements for the scalar oracles in :mod:`repro.attacks.oracle`
that answer N queries per call through the packed engine while preserving
the query-count accounting (``queries`` counts *logical* queries, i.e. one
per vector / sequence, exactly as the attack-cost tables expect — batching
is an implementation detail of the simulator, not of the threat model).

Both classes subclass their scalar counterpart, so every attack written
against the scalar oracle API keeps working and picks up the fast path by
constructing the batched variant instead.  The ``backend`` knob selects the
packed engine's evaluation backend (see :data:`repro.engine.packed.
BACKENDS`); the default ``"auto"`` uses the numpy uint64 kernels for batches
wider than one tile when numpy is available.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from repro.attacks.oracle import CombinationalOracle, SequentialOracle
from repro.engine.packed import PackedSimulator, pack_vectors
from repro.netlist.circuit import Circuit


class BatchedCombinationalOracle(CombinationalOracle):
    """Scan-access oracle answering whole batches of vectors per call."""

    def __init__(self, original: Circuit, *, backend: str = "auto") -> None:
        super().__init__(original)
        self._packed = PackedSimulator(self.view, backend=backend)

    def query(self, assignment: Mapping[str, int]) -> Dict[str, int]:
        """Scalar query, served by the packed engine (width-1 batch)."""
        return self.query_batch([assignment])[0]

    def query_batch(
        self, assignments: Sequence[Mapping[str, int]]
    ) -> List[Dict[str, int]]:
        """Apply N input/state vectors in one packed pass.

        Missing nets default to 0 per lane, matching the scalar oracle's
        ``assignment.get(net, 0)`` coercion.  ``queries`` advances by N.
        """
        self.queries += len(assignments)
        if not assignments:
            return []
        vectors = [
            {net: int(a.get(net, 0)) & 1 for net in self.view.inputs}
            for a in assignments
        ]
        return self._packed.outputs_batch(vectors)


class BatchedSequentialOracle(SequentialOracle):
    """Reset-and-run oracle simulating N independent sequences as lanes."""

    def __init__(self, original: Circuit, *, backend: str = "auto") -> None:
        super().__init__(original)
        self._packed = PackedSimulator(original, backend=backend)

    def query(
        self, input_sequence: Sequence[Mapping[str, int]]
    ) -> List[Dict[str, int]]:
        """Scalar query, served by the packed engine (single lane)."""
        return self.query_batch([input_sequence])[0]

    def query_batch(
        self, sequences: Sequence[Sequence[Mapping[str, int]]]
    ) -> List[List[Dict[str, int]]]:
        """Reset N chips and run one input sequence per lane, in lockstep.

        Sequences may have different lengths: every lane steps until the
        longest sequence ends (short lanes see all-zero inputs once
        exhausted, and those surplus outputs are discarded), so each result
        list has exactly the length of its input sequence.  ``queries``
        advances by N and ``cycles`` by the total number of input vectors.
        N is unbounded — batches wider than one packed word are split into
        tiles by the simulator (see :data:`repro.engine.packed.TILE_WIDTH`).
        """
        self.queries += len(sequences)
        self.cycles += sum(len(seq) for seq in sequences)
        lanes = len(sequences)
        if lanes == 0:
            return []
        horizon = max(len(seq) for seq in sequences)
        results: List[List[Dict[str, int]]] = [[] for _ in sequences]
        if horizon == 0:
            return results
        inputs = self.circuit.inputs
        state = self._packed.initial_state_words(lanes)
        empty: Mapping[str, int] = {}
        for t in range(horizon):
            cycle_vectors = [
                {net: int(vec.get(net, 0)) & 1 for net in inputs}
                for vec in (seq[t] if t < len(seq) else empty for seq in sequences)
            ]
            input_words = pack_vectors(cycle_vectors, inputs)
            out_words, state = self._packed.step_words(input_words, state, width=lanes)
            for lane, seq in enumerate(sequences):
                if t < len(seq):
                    results[lane].append(
                        {net: (out_words[net] >> lane) & 1 for net in self.circuit.outputs}
                    )
        return results
