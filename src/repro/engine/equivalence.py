"""Packed random equivalence checking and packed toggle/activity counting.

These are the vectorized counterparts of the scalar routines in
:mod:`repro.sim.logicsim` / :mod:`repro.sim.equivalence`.  They draw random
stimulus from the *same* seeded RNG in the *same* order as the scalar
implementations and report identical :class:`EquivalenceResult` fields
(verdict, ``checked`` count, counterexample dict), so callers can switch
engines without perturbing any seeded experiment.
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping, Optional, Sequence

from repro.engine.packed import PackedSimulator, pack_vectors
from repro.netlist.circuit import Circuit, CircuitError
from repro.sim.equivalence import EquivalenceResult


def _lowest_set_lane(word: int) -> int:
    """Index of the least-significant set bit (the first failing lane)."""
    return (word & -word).bit_length() - 1


def packed_random_equivalence_check(
    original: Circuit,
    candidate: Circuit,
    *,
    key_assignment: Optional[Mapping[str, int]] = None,
    num_vectors: int = 256,
    seed: int = 0,
    backend: str = "auto",
) -> EquivalenceResult:
    """Bit-parallel version of :func:`repro.sim.equivalence.random_equivalence_check`.

    All ``num_vectors`` vectors are evaluated in one packed pass per circuit;
    the first differing (vector, output) pair — in the scalar iteration
    order — is reported as the counterexample.
    """
    rng = random.Random(seed)
    orig_view = original.combinational_view() if original.dffs else original
    cand_view = candidate.combinational_view() if candidate.dffs else candidate
    key_assignment = dict(key_assignment or {})

    shared_outputs = [o for o in orig_view.outputs if o in set(cand_view.outputs)]
    free_inputs = [i for i in cand_view.inputs if i not in key_assignment]

    vectors: List[Dict[str, int]] = []
    for _ in range(num_vectors):
        vector = {net: rng.randint(0, 1) for net in free_inputs}
        vector.update(key_assignment)
        vectors.append(vector)
    if not vectors:
        return EquivalenceResult(equivalent=True, checked=0, method="random")

    orig_vectors = [
        {net: vec.get(net, 0) for net in orig_view.inputs} for vec in vectors
    ]
    width = len(vectors)
    cand_words = PackedSimulator(cand_view, backend=backend).output_words(
        pack_vectors(vectors, cand_view.inputs), width=width
    )
    orig_words = PackedSimulator(orig_view, backend=backend).output_words(
        pack_vectors(orig_vectors, orig_view.inputs), width=width
    )

    diff_words = {net: cand_words[net] ^ orig_words[net] for net in shared_outputs}
    diff_any = 0
    for word in diff_words.values():
        diff_any |= word
    if not diff_any:
        return EquivalenceResult(equivalent=True, checked=num_vectors, method="random")

    lane = _lowest_set_lane(diff_any)
    for net in shared_outputs:
        if (diff_words[net] >> lane) & 1:
            break
    return EquivalenceResult(
        equivalent=False,
        checked=lane + 1,
        counterexample={"inputs": vectors[lane], "net": net},
        method="random",
    )


def packed_sequential_equivalence_check(
    original: Circuit,
    locked: Circuit,
    *,
    key_schedule: Optional[Sequence[int]] = None,
    key_inputs: Optional[Sequence[str]] = None,
    num_sequences: int = 16,
    sequence_length: int = 32,
    seed: int = 0,
    backend: str = "auto",
) -> EquivalenceResult:
    """Bit-parallel version of :func:`repro.sim.equivalence.sequential_equivalence_check`.

    The ``num_sequences`` random sequences become the lanes of one packed
    sequential simulation per circuit (all sequences advance in lockstep),
    instead of ``num_sequences`` full scalar runs.  The verdict, ``checked``
    cycle count and counterexample reproduce the scalar sequence-by-sequence
    iteration exactly.
    """
    from repro.sim.seqsim import apply_key_to_sequence

    rng = random.Random(seed)
    key_inputs = list(key_inputs if key_inputs is not None else locked.key_inputs)
    shared_outputs = [o for o in original.outputs if o in set(locked.outputs)]
    functional_inputs = [i for i in locked.inputs if i not in set(key_inputs)]

    all_vectors: List[List[Dict[str, int]]] = []
    orig_seqs: List[List[Dict[str, int]]] = []
    locked_seqs: List[List[Dict[str, int]]] = []
    for _ in range(num_sequences):
        vectors = [
            {net: rng.randint(0, 1) for net in functional_inputs}
            for _ in range(sequence_length)
        ]
        all_vectors.append(vectors)
        orig_seqs.append(
            [{net: vec.get(net, 0) for net in original.inputs} for vec in vectors]
        )
        if key_schedule:
            locked_seqs.append(apply_key_to_sequence(vectors, key_inputs, key_schedule))
        else:
            locked_vectors = [dict(vec) for vec in vectors]
            for vec in locked_vectors:
                for net in key_inputs:
                    vec.setdefault(net, 0)
            locked_seqs.append(locked_vectors)

    lanes = num_sequences
    if lanes == 0 or sequence_length == 0:
        return EquivalenceResult(equivalent=True, checked=0, method="sequential")

    orig_sim = PackedSimulator(original, backend=backend)
    locked_sim = PackedSimulator(locked, backend=backend)
    orig_state = orig_sim.initial_state_words(lanes)
    locked_state = locked_sim.initial_state_words(lanes)

    per_cycle_diffs: List[Dict[str, int]] = []
    diff_any = 0
    for t in range(sequence_length):
        orig_words = pack_vectors([seq[t] for seq in orig_seqs], original.inputs)
        locked_words = pack_vectors([seq[t] for seq in locked_seqs], locked.inputs)
        orig_out, orig_state = orig_sim.step_words(orig_words, orig_state, width=lanes)
        locked_out, locked_state = locked_sim.step_words(locked_words, locked_state, width=lanes)
        diffs = {net: orig_out[net] ^ locked_out[net] for net in shared_outputs}
        per_cycle_diffs.append(diffs)
        for word in diffs.values():
            diff_any |= word

    if not diff_any:
        return EquivalenceResult(
            equivalent=True, checked=lanes * sequence_length, method="sequential"
        )

    # The scalar check walks sequences in order and stops at the first
    # mismatch, so the reported failure is the lowest failing lane, then the
    # earliest cycle within it, then the first output in declaration order.
    lane = _lowest_set_lane(diff_any)
    for cycle, diffs in enumerate(per_cycle_diffs):
        failing = [net for net in shared_outputs if (diffs[net] >> lane) & 1]
        if failing:
            return EquivalenceResult(
                equivalent=False,
                checked=lane * sequence_length + cycle + 1,
                counterexample={
                    "sequence": lane,
                    "cycle": cycle,
                    "net": failing[0],
                    "inputs": all_vectors[lane][: cycle + 1],
                },
                method="sequential",
            )
    raise AssertionError("diff_any set but no failing cycle found")  # pragma: no cover


def packed_candidate_key_filter(
    original: Circuit,
    locked: Circuit,
    candidates: Sequence[Mapping[str, int]],
    key_inputs: Sequence[str],
    *,
    num_sequences: int = 8,
    sequence_length: int = 48,
    seed: int = 0,
    backend: str = "auto",
) -> List[bool]:
    """Lane-parallel refutation of candidate static keys.

    Simulates ``locked`` under every candidate key against ``original`` over
    ``num_sequences`` seeded random input sequences, with candidate ``c``
    occupying lanes ``[c*num_sequences, (c+1)*num_sequences)`` of one packed
    run per circuit.  Returns one bool per candidate: ``True`` if the
    candidate matched the original on every observed cycle (it *survives*),
    ``False`` if some sequence refuted it.

    The stimulus is drawn exactly as :func:`packed_sequential_equivalence_\
    check` draws it (same rng, same order), so for any single candidate the
    verdict equals ``sequential_equivalence_check(original, locked,
    key_schedule=[packed key], ...)`` with the same parameters — which is
    what lets the sequential attacks use this as a prefilter before their
    authoritative per-key verification.
    """
    if not candidates:
        return []
    blocks = len(candidates)
    if num_sequences == 0 or sequence_length == 0:
        return [True] * blocks

    rng = random.Random(seed)
    key_inputs = list(key_inputs)
    key_set = set(key_inputs)
    shared_outputs = [o for o in original.outputs if o in set(locked.outputs)]
    functional_inputs = [i for i in locked.inputs if i not in key_set]

    sequences = [
        [
            {net: rng.randint(0, 1) for net in functional_inputs}
            for _ in range(sequence_length)
        ]
        for _ in range(num_sequences)
    ]

    lanes = blocks * num_sequences
    block_mask = (1 << num_sequences) - 1
    # Multiplying a num_sequences-wide word by this replicates it into every
    # candidate's lane block (blocks are disjoint, so no carries).
    replicator = sum(1 << (b * num_sequences) for b in range(blocks))
    key_words: Dict[str, int] = {}
    for net in key_inputs:
        word = 0
        for b, candidate in enumerate(candidates):
            if int(candidate.get(net, 0)) & 1:
                word |= block_mask << (b * num_sequences)
        key_words[net] = word

    orig_sim = PackedSimulator(original, backend=backend)
    locked_sim = PackedSimulator(locked, backend=backend)
    orig_state = orig_sim.initial_state_words(num_sequences)
    locked_state = locked_sim.initial_state_words(lanes)

    refuted = 0
    all_refuted = (1 << blocks) - 1
    for t in range(sequence_length):
        base = pack_vectors([seq[t] for seq in sequences], functional_inputs)
        locked_words = {
            net: key_words[net] if net in key_set else base.get(net, 0) * replicator
            for net in locked.inputs
        }
        orig_words = {net: base.get(net, 0) for net in original.inputs}
        orig_out, orig_state = orig_sim.step_words(orig_words, orig_state, width=num_sequences)
        locked_out, locked_state = locked_sim.step_words(locked_words, locked_state, width=lanes)
        for net in shared_outputs:
            diff = locked_out[net] ^ (orig_out[net] * replicator)
            while diff:
                block = _lowest_set_lane(diff) // num_sequences
                refuted |= 1 << block
                diff &= ~(block_mask << (block * num_sequences))
        if refuted == all_refuted:
            break
    return [not (refuted >> b) & 1 for b in range(blocks)]


def packed_toggle_counts(
    circuit: Circuit,
    input_vectors: Sequence[Mapping[str, int]],
    *,
    initial_state: Optional[Mapping[str, int]] = None,
    simulator: Optional[PackedSimulator] = None,
) -> Dict[str, int]:
    """Bit-parallel version of :func:`repro.sim.logicsim.toggle_counts`.

    The sequence is simulated cycle by cycle (state must advance, so time
    cannot be packed into lanes), but each cycle runs the compiled flat
    program instead of the dict-based scalar simulator, and every net's
    value history is accumulated into one word per net.  Toggles are then
    counted in bulk as ``popcount(history ^ (history >> 1))``.

    Callers counting toggles of the same circuit repeatedly can pass a
    prebuilt ``simulator`` to amortize the one-time compilation.
    """
    sim = simulator if simulator is not None else PackedSimulator(circuit)
    compiled = sim.compiled
    num_cycles = len(input_vectors)
    if num_cycles == 0:
        return {}

    state = {q: (1 if init else 0) for q, _, init in compiled.state_items}
    if initial_state:
        for q, value in initial_state.items():
            if q in state:
                state[q] = int(value) & 1
    history = [0] * compiled.num_slots
    for t, vector in enumerate(input_vectors):
        try:
            words = {net: int(vector[net]) & 1 for net in circuit.inputs}
        except KeyError as exc:
            raise CircuitError(f"missing value for primary input {exc.args[0]!r}") from exc
        values = sim._eval_slots(words, state, 1)
        for slot in range(compiled.num_slots):
            if values[slot]:
                history[slot] |= 1 << t
        state = {q: values[d_slot] for q, d_slot in compiled.dff_d_slots}

    span_mask = (1 << (num_cycles - 1)) - 1
    toggles: Dict[str, int] = {}
    names = compiled.net_names
    for slot in range(compiled.num_slots):
        word = history[slot]
        count = bin((word ^ (word >> 1)) & span_mask).count("1")
        if count:
            toggles[names[slot]] = count
    return toggles
