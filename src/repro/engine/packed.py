"""The packed bit-parallel runtime.

Vectors are *transposed*: instead of one dict of 0/1 values per vector, the
engine keeps one arbitrary-width Python int per net, where bit ``j`` holds
the net's value under vector ``j`` (lane ``j``).  The helpers at the top of
this module convert between the two layouts; :class:`PackedSimulator` runs
the compiled flat program over the word layout.

The batch entry points (``evaluate_batch`` / ``outputs_batch`` /
``next_state_batch``) mirror the scalar :class:`~repro.sim.logicsim.\
CombinationalSimulator` contract vector-for-vector, including the missing-
input :class:`~repro.netlist.circuit.CircuitError` and the ``ff.init``
default for absent state bits, so the two simulators are interchangeable and
can be diffed bit-for-bit.

Batches of arbitrary width are supported through *multi-word tiling*: a pass
wider than :data:`TILE_WIDTH` lanes is split transparently into word-sized
tiles, each evaluated as its own packed pass, and the per-tile results are
stitched back into full-width words.  Tiling keeps every intermediate word
inside CPython's fast fixed-digit-count big-int range instead of letting
one enormous int flow through every gate, and callers never see it: the
word-level and batch APIs accept any width / batch size.
"""

from __future__ import annotations

import os
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.engine.compiler import CompiledCircuit, compile_circuit
from repro.netlist.circuit import Circuit, CircuitError

#: Per-lane state: either one mapping broadcast to every lane, or one
#: mapping per lane.
StateArg = Optional[Union[Mapping[str, int], Sequence[Mapping[str, int]]]]

#: Lane count above which a packed pass is split into word-sized tiles.
TILE_WIDTH = 128


def pack_bits(bits: Sequence[int]) -> int:
    """Pack scalar 0/1 values into a word (bit ``j`` = ``bits[j] & 1``)."""
    word = 0
    for lane, bit in enumerate(bits):
        if bit & 1:
            word |= 1 << lane
    return word


def unpack_bits(word: int, count: int) -> List[int]:
    """Inverse of :func:`pack_bits` for the first ``count`` lanes."""
    return [(word >> lane) & 1 for lane in range(count)]


def pack_vectors(
    vectors: Sequence[Mapping[str, int]],
    nets: Sequence[str],
    *,
    default: Optional[int] = None,
) -> Dict[str, int]:
    """Transpose per-vector dicts into per-net words.

    ``default`` fills lanes whose mapping lacks a net; with ``default=None``
    a missing net raises :class:`CircuitError` (the scalar simulator's
    missing-primary-input behaviour).
    """
    words: Dict[str, int] = {}
    for net in nets:
        word = 0
        bit = 1
        if default is None:
            try:
                for vector in vectors:
                    if int(vector[net]) & 1:
                        word |= bit
                    bit <<= 1
            except KeyError as exc:
                raise CircuitError(f"missing value for primary input {net!r}") from exc
        else:
            for vector in vectors:
                if int(vector.get(net, default)) & 1:
                    word |= bit
                bit <<= 1
        words[net] = word
    return words


def unpack_vectors(
    words: Mapping[str, int], nets: Sequence[str], count: int
) -> List[Dict[str, int]]:
    """Transpose per-net words back into ``count`` per-vector dicts."""
    vectors: List[Dict[str, int]] = [{} for _ in range(count)]
    for net in nets:
        word = words[net]
        for lane in range(count):
            vectors[lane][net] = (word >> lane) & 1
    return vectors


class PackedSimulator:
    """Bit-parallel simulator over a compiled circuit.

    Word-level methods (``eval_words``, ``output_words``,
    ``next_state_words``, ``step_words``) operate directly on per-net words
    and take an explicit ``width``; batch methods accept/return per-vector
    dicts and infer the width from the batch size.  Widths beyond
    ``tile_width`` lanes are evaluated tile by tile (see the module
    docstring); ``tile_width=None`` disables tiling and runs every pass as
    one arbitrarily wide word.
    """

    def __init__(
        self,
        circuit: Circuit,
        *,
        compiled: Optional[CompiledCircuit] = None,
        tile_width: Optional[int] = TILE_WIDTH,
    ) -> None:
        if tile_width is not None and tile_width < 1:
            raise ValueError("tile_width must be a positive lane count or None")
        self.circuit = circuit
        self.compiled = compiled if compiled is not None else compile_circuit(circuit)
        self.tile_width = tile_width
        # Debug sanitizer (see repro.check.program): after every packed pass,
        # assert no word leaked bits past the batch mask.  One attribute test
        # per tile when off.
        self.check_words = os.environ.get("REPRO_CHECK_KERNELS", "") == "1"

    def refresh(self) -> None:
        """Recompile after the circuit was mutated."""
        self.compiled = compile_circuit(self.circuit)

    # ------------------------------------------------------------------ #
    # word-level API
    # ------------------------------------------------------------------ #
    def initial_state_words(self, width: int) -> Dict[str, int]:
        """Reset-value words for every flip-flop (init broadcast to all lanes)."""
        mask = (1 << width) - 1
        return {q: (mask if init else 0) for q, _, init in self.compiled.state_items}

    def _eval_slots_tile(
        self,
        input_words: Mapping[str, int],
        state_words: Optional[Mapping[str, int]],
        width: int,
        offset: int,
    ) -> List[int]:
        """One packed pass over ``width`` lanes starting at lane ``offset``."""
        compiled = self.compiled
        mask = (1 << width) - 1
        values = [0] * compiled.num_slots
        for net, slot in zip(self.circuit.inputs, compiled.input_slots):
            try:
                values[slot] = (input_words[net] >> offset) & mask
            except KeyError as exc:
                raise CircuitError(f"missing word for primary input {net!r}") from exc
        state_words = state_words or {}
        for q, slot, init in compiled.state_items:
            word = state_words.get(q)
            if word is None:
                values[slot] = mask if init else 0
            else:
                values[slot] = (word >> offset) & mask
        compiled.run(values, mask)
        if self.check_words:
            from repro.check.program import verify_packed_words

            verify_packed_words(
                values, mask,
                label=f"<packed pass width={width} offset={offset}>",
            )
        return values

    def _eval_slots(
        self,
        input_words: Mapping[str, int],
        state_words: Optional[Mapping[str, int]],
        width: int,
    ) -> List[int]:
        tile = self.tile_width
        if tile is None or width <= tile:
            return self._eval_slots_tile(input_words, state_words, width, 0)
        values = [0] * self.compiled.num_slots
        for offset in range(0, width, tile):  # hot-loop
            tile_values = self._eval_slots_tile(
                input_words, state_words, min(tile, width - offset), offset
            )
            for slot, word in enumerate(tile_values):
                if word:
                    values[slot] |= word << offset
        return values

    def eval_words(
        self,
        input_words: Mapping[str, int],
        state_words: Optional[Mapping[str, int]] = None,
        *,
        width: int,
    ) -> Dict[str, int]:
        """Evaluate one packed pass; returns a word for every net."""
        values = self._eval_slots(input_words, state_words, width)
        names = self.compiled.net_names
        return {names[slot]: values[slot] for slot in range(len(names))}

    def output_words(
        self,
        input_words: Mapping[str, int],
        state_words: Optional[Mapping[str, int]] = None,
        *,
        width: int,
    ) -> Dict[str, int]:
        """Evaluate and return only the primary-output words."""
        values = self._eval_slots(input_words, state_words, width)
        return {
            net: values[slot]
            for net, slot in zip(self.circuit.outputs, self.compiled.output_slots)
        }

    def next_state_words(
        self,
        input_words: Mapping[str, int],
        state_words: Optional[Mapping[str, int]] = None,
        *,
        width: int,
    ) -> Dict[str, int]:
        """Evaluate and return the next-state words keyed by Q net."""
        values = self._eval_slots(input_words, state_words, width)
        return {q: values[d_slot] for q, d_slot in self.compiled.dff_d_slots}

    def step_words(
        self,
        input_words: Mapping[str, int],
        state_words: Optional[Mapping[str, int]],
        *,
        width: int,
    ) -> Tuple[Dict[str, int], Dict[str, int]]:
        """One packed clock edge: returns ``(output_words, next_state_words)``.

        All lanes advance together; ``state_words=None`` starts every lane
        from the flip-flop reset values.
        """
        values = self._eval_slots(input_words, state_words, width)
        compiled = self.compiled
        outputs = {
            net: values[slot]
            for net, slot in zip(self.circuit.outputs, compiled.output_slots)
        }
        next_state = {q: values[d_slot] for q, d_slot in compiled.dff_d_slots}
        return outputs, next_state

    # ------------------------------------------------------------------ #
    # batch (per-vector dict) API
    # ------------------------------------------------------------------ #
    def _pack_states(self, state_vectors: StateArg, width: int) -> Optional[Dict[str, int]]:
        if state_vectors is None:
            return None
        mask = (1 << width) - 1
        if isinstance(state_vectors, Mapping):
            # One assignment broadcast across every lane.
            return {
                q: (mask if int(value) & 1 else 0)
                for q, value in state_vectors.items()
            }
        words: Dict[str, int] = {}
        for q, _, init in self.compiled.state_items:
            word = 0
            for lane, state in enumerate(state_vectors):
                value = state.get(q, init)
                if int(value) & 1:
                    word |= 1 << lane
            words[q] = word
        return words

    def evaluate_batch(
        self,
        input_vectors: Sequence[Mapping[str, int]],
        state_vectors: StateArg = None,
    ) -> List[Dict[str, int]]:
        """Evaluate every vector; one full net-value dict per vector."""
        width = len(input_vectors)
        if width == 0:
            return []
        input_words = pack_vectors(input_vectors, self.circuit.inputs)
        values = self._eval_slots(input_words, self._pack_states(state_vectors, width), width)
        names = self.compiled.net_names
        return [
            {names[slot]: (values[slot] >> lane) & 1 for slot in range(len(names))}
            for lane in range(width)
        ]

    def outputs_batch(
        self,
        input_vectors: Sequence[Mapping[str, int]],
        state_vectors: StateArg = None,
    ) -> List[Dict[str, int]]:
        """Evaluate every vector; one primary-output dict per vector."""
        width = len(input_vectors)
        if width == 0:
            return []
        input_words = pack_vectors(input_vectors, self.circuit.inputs)
        values = self._eval_slots(input_words, self._pack_states(state_vectors, width), width)
        pairs = list(zip(self.circuit.outputs, self.compiled.output_slots))
        return [
            {net: (values[slot] >> lane) & 1 for net, slot in pairs}
            for lane in range(width)
        ]

    def next_state_batch(
        self,
        input_vectors: Sequence[Mapping[str, int]],
        state_vectors: StateArg = None,
    ) -> List[Dict[str, int]]:
        """Evaluate every vector; one next-state dict (keyed by Q) per vector."""
        width = len(input_vectors)
        if width == 0:
            return []
        input_words = pack_vectors(input_vectors, self.circuit.inputs)
        values = self._eval_slots(input_words, self._pack_states(state_vectors, width), width)
        pairs = self.compiled.dff_d_slots
        return [
            {q: (values[d_slot] >> lane) & 1 for q, d_slot in pairs}
            for lane in range(width)
        ]
