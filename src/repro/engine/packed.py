"""The packed bit-parallel runtime.

Vectors are *transposed*: instead of one dict of 0/1 values per vector, the
engine keeps one arbitrary-width Python int per net, where bit ``j`` holds
the net's value under vector ``j`` (lane ``j``).  The helpers at the top of
this module convert between the two layouts; :class:`PackedSimulator` runs
the compiled flat program over the word layout.

The batch entry points (``evaluate_batch`` / ``outputs_batch`` /
``next_state_batch``) mirror the scalar :class:`~repro.sim.logicsim.\
CombinationalSimulator` contract vector-for-vector, including the missing-
input :class:`~repro.netlist.circuit.CircuitError` and the ``ff.init``
default for absent state bits, so the two simulators are interchangeable and
can be diffed bit-for-bit.

Batches of arbitrary width are supported through *multi-word tiling*: a pass
wider than :data:`TILE_WIDTH` lanes is split transparently into word-sized
tiles, each evaluated as its own packed pass, and the per-tile results are
stitched back into full-width words.  Tiling keeps every intermediate word
inside CPython's fast fixed-digit-count big-int range instead of letting
one enormous int flow through every gate, and callers never see it: the
word-level and batch APIs accept any width / batch size.

Two evaluation backends sit behind the same word-level contract:

* ``"bigint"`` — the tiled arbitrary-width-int path described above, the
  universal fallback with no dependencies;
* ``"numpy"`` — the vectorized target from :func:`repro.engine.compiler.
  numpy_kernel_sources`: every net slot is a row of one ``(num_slots,
  n_words)`` ``uint64`` buffer (reused across passes) and each gate is a
  handful of whole-row in-place ufunc calls, so a 4096-lane batch is one
  fused array sweep instead of 32 sequential bigint tiles;
* ``"auto"`` (the default) — numpy whenever it is importable *and* the
  pass is wider than one tile, the tiled bigint path otherwise.  With
  numpy absent, ``"auto"`` silently degrades to ``"bigint"``; only an
  explicit ``backend="numpy"`` raises.

Both backends produce bit-identical words (the property tests prove it
against the scalar reference), so the choice is purely a throughput knob.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.engine.compiler import (
    CompiledCircuit,
    compile_circuit,
    numpy_available,
    numpy_module,
    require_numpy,
)
from repro.netlist.circuit import Circuit, CircuitError

#: Per-lane state: either one mapping broadcast to every lane, or one
#: mapping per lane.
StateArg = Optional[Union[Mapping[str, int], Sequence[Mapping[str, int]]]]

#: Lane count above which a packed pass is split into word-sized tiles.
TILE_WIDTH = 128

#: Packed-engine evaluation backends (see the module docstring).
BACKENDS = ("auto", "bigint", "numpy")

#: Attack-level ``engine=`` knob values accepted by :func:`parse_engine`.
ENGINE_CHOICES = ("packed", "packed-bigint", "packed-numpy", "scalar")

#: All-ones uint64 word (``~0`` is exact on uint64; no sign bit exists).
_FULL_WORD = 0xFFFF_FFFF_FFFF_FFFF


def parse_engine(engine: str) -> Tuple[bool, str]:
    """Split an attack ``engine`` knob into ``(batched, packed backend)``.

    ``"packed"`` is batched with the ``"auto"`` backend; ``"packed-bigint"``
    and ``"packed-numpy"`` pin the packed backend; ``"scalar"`` disables
    batching entirely (the packed engine still serves width-1 passes, for
    which ``"bigint"`` is always the right backend).
    """
    if engine == "packed":
        return True, "auto"
    if engine == "packed-bigint":
        return True, "bigint"
    if engine == "packed-numpy":
        return True, "numpy"
    if engine == "scalar":
        return False, "bigint"
    raise ValueError(
        f"unknown engine {engine!r} (expected one of {', '.join(ENGINE_CHOICES)})"
    )


def pack_bits(bits: Sequence[int]) -> int:
    """Pack scalar 0/1 values into a word (bit ``j`` = ``bits[j] & 1``)."""
    word = 0
    for lane, bit in enumerate(bits):
        if bit & 1:
            word |= 1 << lane
    return word


def _pack_iter_numpy(module, values: Iterable[int], count: int) -> int:
    """Pack ``count`` 0/1 values into a word via the byte swizzle.

    ``np.packbits`` over a uint8 lane array replaces ``count`` big-int
    shift-or steps (each O(count/64) words deep) with one O(count) byte
    pass — the difference between O(count²) and O(count) work per net on
    wide batch boundaries.
    """
    lanes = module.fromiter(values, dtype=module.uint8, count=count)
    packed = module.packbits(lanes, bitorder="little")
    return int.from_bytes(packed.tobytes(), "little")


def _unpack_word_bigint(word: int, count: int) -> List[int]:
    """Per-lane shift-and-mask unpack (the dependency-free fallback)."""
    return [(word >> lane) & 1 for lane in range(count)]


def _unpack_word_numpy(module, word: int, count: int) -> List[int]:
    """Unpack a word's first ``count`` lanes via ``int.to_bytes``/
    ``np.unpackbits`` — O(count) instead of O(count²) big-int shifting."""
    data = (word & ((1 << count) - 1)).to_bytes((count + 7) >> 3, "little")
    lanes = module.unpackbits(
        module.frombuffer(data, dtype=module.uint8), count=count, bitorder="little"
    )
    return lanes.tolist()


def _swizzle_module(count: int):
    """numpy, when a ``count``-lane transpose is wide enough to repay the
    byte swizzle (one tile or less and the plain loops win); else None."""
    if count <= TILE_WIDTH:
        return None
    return numpy_module()


def unpack_bits(word: int, count: int) -> List[int]:
    """Inverse of :func:`pack_bits` for the first ``count`` lanes."""
    module = _swizzle_module(count)
    if module is not None:
        return _unpack_word_numpy(module, word, count)
    return _unpack_word_bigint(word, count)


def _pack_vectors_bigint(
    vectors: Sequence[Mapping[str, int]],
    nets: Sequence[str],
    default: Optional[int],
) -> Dict[str, int]:
    """Reference shift-or transpose (kept as the numpy-free fallback)."""
    words: Dict[str, int] = {}
    for net in nets:
        word = 0
        bit = 1
        if default is None:
            try:
                for vector in vectors:
                    if int(vector[net]) & 1:
                        word |= bit
                    bit <<= 1
            except KeyError as exc:
                raise CircuitError(f"missing value for primary input {net!r}") from exc
        else:
            for vector in vectors:
                if int(vector.get(net, default)) & 1:
                    word |= bit
                bit <<= 1
        words[net] = word
    return words


def _pack_vectors_numpy(
    module,
    vectors: Sequence[Mapping[str, int]],
    nets: Sequence[str],
    default: Optional[int],
) -> Dict[str, int]:
    """Byte-swizzle transpose for wide batches (bit-identical to the
    bigint fallback; the unit tests cross-check the two)."""
    count = len(vectors)
    words: Dict[str, int] = {}
    for net in nets:
        if default is None:
            try:
                word = _pack_iter_numpy(
                    module, (int(vector[net]) & 1 for vector in vectors), count
                )
            except KeyError as exc:
                raise CircuitError(f"missing value for primary input {net!r}") from exc
        else:
            word = _pack_iter_numpy(
                module,
                (int(vector.get(net, default)) & 1 for vector in vectors),
                count,
            )
        words[net] = word
    return words


def pack_vectors(
    vectors: Sequence[Mapping[str, int]],
    nets: Sequence[str],
    *,
    default: Optional[int] = None,
) -> Dict[str, int]:
    """Transpose per-vector dicts into per-net words.

    ``default`` fills lanes whose mapping lacks a net; with ``default=None``
    a missing net raises :class:`CircuitError` (the scalar simulator's
    missing-primary-input behaviour).  Batches wider than one tile swizzle
    through ``np.packbits`` when numpy is available.
    """
    module = _swizzle_module(len(vectors))
    if module is not None:
        return _pack_vectors_numpy(module, vectors, nets, default)
    return _pack_vectors_bigint(vectors, nets, default)


def unpack_vectors(
    words: Mapping[str, int], nets: Sequence[str], count: int
) -> List[Dict[str, int]]:
    """Transpose per-net words back into ``count`` per-vector dicts."""
    vectors: List[Dict[str, int]] = [{} for _ in range(count)]
    module = _swizzle_module(count)
    for net in nets:
        word = words[net]
        if module is not None:
            lanes = _unpack_word_numpy(module, word, count)
            for lane, bit in enumerate(lanes):
                vectors[lane][net] = bit
        else:
            for lane in range(count):
                vectors[lane][net] = (word >> lane) & 1
    return vectors


class PackedSimulator:
    """Bit-parallel simulator over a compiled circuit.

    Word-level methods (``eval_words``, ``output_words``,
    ``next_state_words``, ``step_words``) operate directly on per-net words
    and take an explicit ``width``; batch methods accept/return per-vector
    dicts and infer the width from the batch size.  Widths beyond
    ``tile_width`` lanes are evaluated tile by tile (see the module
    docstring); ``tile_width=None`` disables tiling and runs every pass as
    one arbitrarily wide word.
    """

    def __init__(
        self,
        circuit: Circuit,
        *,
        compiled: Optional[CompiledCircuit] = None,
        tile_width: Optional[int] = TILE_WIDTH,
        backend: str = "auto",
    ) -> None:
        if tile_width is not None and tile_width < 1:
            raise ValueError("tile_width must be a positive lane count or None")
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r} (expected one of {', '.join(BACKENDS)})"
            )
        if backend == "numpy":
            require_numpy("PackedSimulator(backend='numpy')")
        self.circuit = circuit
        self.compiled = compiled if compiled is not None else compile_circuit(circuit)
        self.tile_width = tile_width
        self.backend = backend
        # The numpy backend's value buffer, grown on demand and reused
        # across passes so the hot loop never allocates.
        self._np_buffer = None
        # Debug sanitizer (see repro.check.program): after every packed pass,
        # assert no word leaked bits past the batch mask.  One attribute test
        # per tile when off.
        self.check_words = os.environ.get("REPRO_CHECK_KERNELS", "") == "1"

    def refresh(self) -> None:
        """Recompile after the circuit was mutated."""
        self.compiled = compile_circuit(self.circuit)
        self._np_buffer = None

    # ------------------------------------------------------------------ #
    # word-level API
    # ------------------------------------------------------------------ #
    def initial_state_words(self, width: int) -> Dict[str, int]:
        """Reset-value words for every flip-flop (init broadcast to all lanes)."""
        mask = (1 << width) - 1
        return {q: (mask if init else 0) for q, _, init in self.compiled.state_items}

    def _eval_slots_tile(
        self,
        input_words: Mapping[str, int],
        state_words: Optional[Mapping[str, int]],
        width: int,
        offset: int,
    ) -> List[int]:
        """One packed pass over ``width`` lanes starting at lane ``offset``."""
        compiled = self.compiled
        mask = (1 << width) - 1
        values = [0] * compiled.num_slots
        for net, slot in zip(self.circuit.inputs, compiled.input_slots):
            try:
                values[slot] = (input_words[net] >> offset) & mask
            except KeyError as exc:
                raise CircuitError(f"missing word for primary input {net!r}") from exc
        state_words = state_words or {}
        for q, slot, init in compiled.state_items:
            word = state_words.get(q)
            if word is None:
                values[slot] = mask if init else 0
            else:
                values[slot] = (word >> offset) & mask
        compiled.run(values, mask)
        if self.check_words:
            from repro.check.program import verify_packed_words

            verify_packed_words(
                values, mask,
                label=f"<packed pass width={width} offset={offset}>",
            )
        return values

    def _use_numpy(self, width: int) -> bool:
        """Should this ``width``-lane pass run on the numpy backend?"""
        if self.backend == "numpy":
            return True
        if self.backend == "bigint":
            return False
        tile = self.tile_width if self.tile_width is not None else TILE_WIDTH
        return width > tile and numpy_available()

    def _eval_slots_numpy(
        self,
        input_words: Mapping[str, int],
        state_words: Optional[Mapping[str, int]],
        width: int,
        wanted: Optional[Sequence[int]] = None,
    ):
        """One vectorized pass: slot ``s`` lives in row ``s`` of a reused
        ``(num_slots, n_words)`` uint64 buffer.

        Returns per-slot words — the full slot list when ``wanted`` is
        ``None``, else a dict covering only the requested slots (extracting
        a row back into a Python int costs real time at thousands of lanes,
        so callers that need a handful of outputs say so).
        """
        module = require_numpy("PackedSimulator(backend='numpy')")
        compiled = self.compiled
        n_words = max(1, (width + 63) >> 6)
        nbytes = n_words << 3
        buf = self._np_buffer
        if buf is None or buf.shape != (compiled.num_slots, n_words):
            buf = module.zeros((compiled.num_slots, n_words), dtype="<u8")
            self._np_buffer = buf
        mask_int = (1 << width) - 1
        tail = mask_int >> ((n_words - 1) << 6)
        mask_row = module.empty(n_words, dtype="<u8")
        mask_row[:] = _FULL_WORD
        mask_row[-1] = tail
        frombuffer = module.frombuffer
        for net, slot in zip(self.circuit.inputs, compiled.input_slots):
            try:
                word = input_words[net]
            except KeyError as exc:
                raise CircuitError(f"missing word for primary input {net!r}") from exc
            buf[slot] = frombuffer((word & mask_int).to_bytes(nbytes, "little"), "<u8")
        state_words = state_words or {}
        for q, slot, init in compiled.state_items:
            word = state_words.get(q)
            if word is None:
                if init:
                    buf[slot] = mask_row
                else:
                    buf[slot] = 0
            else:
                buf[slot] = frombuffer(
                    (word & mask_int).to_bytes(nbytes, "little"), "<u8"
                )
        compiled.run_numpy(buf, mask_row)
        # ``binv`` is exact on uint64, so inverted rows carry garbage above
        # the live lanes of the final partial word.  Bitwise ops are lane-
        # independent — the garbage never contaminates live lanes — so one
        # canonicalizing sweep restores the packed-word invariant.
        buf[:, -1] &= tail
        if self.check_words:
            from repro.check.program import verify_packed_array

            verify_packed_array(buf, mask_row, label=f"<numpy pass width={width}>")
        if wanted is None:
            return [
                int.from_bytes(buf[slot].tobytes(), "little")
                for slot in range(compiled.num_slots)
            ]
        return {
            slot: int.from_bytes(buf[slot].tobytes(), "little") for slot in set(wanted)
        }

    def _eval_slots(
        self,
        input_words: Mapping[str, int],
        state_words: Optional[Mapping[str, int]],
        width: int,
        wanted: Optional[Sequence[int]] = None,
    ):
        """Per-slot result words, indexable by slot number.

        ``wanted`` is an optional slot subset the caller will read; the
        bigint path ignores it (slot extraction is free there), the numpy
        path uses it to skip converting unread rows.
        """
        if self._use_numpy(width):
            return self._eval_slots_numpy(input_words, state_words, width, wanted)
        tile = self.tile_width
        if tile is None or width <= tile:
            return self._eval_slots_tile(input_words, state_words, width, 0)
        values = [0] * self.compiled.num_slots
        for offset in range(0, width, tile):  # hot-loop
            tile_values = self._eval_slots_tile(
                input_words, state_words, min(tile, width - offset), offset
            )
            for slot, word in enumerate(tile_values):
                if word:
                    values[slot] |= word << offset
        return values

    def eval_words(
        self,
        input_words: Mapping[str, int],
        state_words: Optional[Mapping[str, int]] = None,
        *,
        width: int,
    ) -> Dict[str, int]:
        """Evaluate one packed pass; returns a word for every net."""
        values = self._eval_slots(input_words, state_words, width)
        names = self.compiled.net_names
        return {names[slot]: values[slot] for slot in range(len(names))}

    def output_words(
        self,
        input_words: Mapping[str, int],
        state_words: Optional[Mapping[str, int]] = None,
        *,
        width: int,
    ) -> Dict[str, int]:
        """Evaluate and return only the primary-output words."""
        values = self._eval_slots(
            input_words, state_words, width, wanted=self.compiled.output_slots
        )
        return {
            net: values[slot]
            for net, slot in zip(self.circuit.outputs, self.compiled.output_slots)
        }

    def next_state_words(
        self,
        input_words: Mapping[str, int],
        state_words: Optional[Mapping[str, int]] = None,
        *,
        width: int,
    ) -> Dict[str, int]:
        """Evaluate and return the next-state words keyed by Q net."""
        values = self._eval_slots(
            input_words,
            state_words,
            width,
            wanted=[d_slot for _, d_slot in self.compiled.dff_d_slots],
        )
        return {q: values[d_slot] for q, d_slot in self.compiled.dff_d_slots}

    def step_words(
        self,
        input_words: Mapping[str, int],
        state_words: Optional[Mapping[str, int]],
        *,
        width: int,
    ) -> Tuple[Dict[str, int], Dict[str, int]]:
        """One packed clock edge: returns ``(output_words, next_state_words)``.

        All lanes advance together; ``state_words=None`` starts every lane
        from the flip-flop reset values.
        """
        compiled = self.compiled
        wanted = list(compiled.output_slots) + [d for _, d in compiled.dff_d_slots]
        values = self._eval_slots(input_words, state_words, width, wanted=wanted)
        outputs = {
            net: values[slot]
            for net, slot in zip(self.circuit.outputs, compiled.output_slots)
        }
        next_state = {q: values[d_slot] for q, d_slot in compiled.dff_d_slots}
        return outputs, next_state

    # ------------------------------------------------------------------ #
    # batch (per-vector dict) API
    # ------------------------------------------------------------------ #
    def _pack_states(self, state_vectors: StateArg, width: int) -> Optional[Dict[str, int]]:
        if state_vectors is None:
            return None
        mask = (1 << width) - 1
        if isinstance(state_vectors, Mapping):
            # One assignment broadcast across every lane.
            return {
                q: (mask if int(value) & 1 else 0)
                for q, value in state_vectors.items()
            }
        count = len(state_vectors)
        module = _swizzle_module(count)
        words: Dict[str, int] = {}
        for q, _, init in self.compiled.state_items:
            if module is not None:
                words[q] = _pack_iter_numpy(
                    module,
                    (int(state.get(q, init)) & 1 for state in state_vectors),
                    count,
                )
                continue
            word = 0
            for lane, state in enumerate(state_vectors):
                value = state.get(q, init)
                if int(value) & 1:
                    word |= 1 << lane
            words[q] = word
        return words

    def evaluate_batch(
        self,
        input_vectors: Sequence[Mapping[str, int]],
        state_vectors: StateArg = None,
    ) -> List[Dict[str, int]]:
        """Evaluate every vector; one full net-value dict per vector."""
        width = len(input_vectors)
        if width == 0:
            return []
        input_words = pack_vectors(input_vectors, self.circuit.inputs)
        values = self._eval_slots(input_words, self._pack_states(state_vectors, width), width)
        names = self.compiled.net_names
        return [
            {names[slot]: (values[slot] >> lane) & 1 for slot in range(len(names))}
            for lane in range(width)
        ]

    def outputs_batch(
        self,
        input_vectors: Sequence[Mapping[str, int]],
        state_vectors: StateArg = None,
    ) -> List[Dict[str, int]]:
        """Evaluate every vector; one primary-output dict per vector."""
        width = len(input_vectors)
        if width == 0:
            return []
        input_words = pack_vectors(input_vectors, self.circuit.inputs)
        values = self._eval_slots(
            input_words,
            self._pack_states(state_vectors, width),
            width,
            wanted=self.compiled.output_slots,
        )
        pairs = list(zip(self.circuit.outputs, self.compiled.output_slots))
        return [
            {net: (values[slot] >> lane) & 1 for net, slot in pairs}
            for lane in range(width)
        ]

    def next_state_batch(
        self,
        input_vectors: Sequence[Mapping[str, int]],
        state_vectors: StateArg = None,
    ) -> List[Dict[str, int]]:
        """Evaluate every vector; one next-state dict (keyed by Q) per vector."""
        width = len(input_vectors)
        if width == 0:
            return []
        input_words = pack_vectors(input_vectors, self.circuit.inputs)
        values = self._eval_slots(
            input_words,
            self._pack_states(state_vectors, width),
            width,
            wanted=[d_slot for _, d_slot in self.compiled.dff_d_slots],
        )
        pairs = self.compiled.dff_d_slots
        return [
            {q: (values[d_slot] >> lane) & 1 for q, d_slot in pairs}
            for lane in range(width)
        ]
