"""CNF containers.

Literals follow the DIMACS convention: variables are positive integers and a
negative literal is the negated variable.  :class:`CNF` is a thin container
used to pass formulas between the Tseitin encoder, the attacks and the
solver; the solver itself keeps its own internal clause database.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

Clause = Tuple[int, ...]


@dataclass
class CNF:
    """A CNF formula: a clause list plus the number of variables used."""

    num_vars: int = 0
    clauses: List[Clause] = field(default_factory=list)

    def new_var(self) -> int:
        """Allocate and return a fresh variable."""
        self.num_vars += 1
        return self.num_vars

    def add_clause(self, literals: Iterable[int]) -> None:
        """Add one clause, updating ``num_vars`` to cover its literals."""
        clause = tuple(int(l) for l in literals)
        if not clause:
            raise ValueError("empty clause added to CNF (formula is trivially UNSAT)")
        if any(l == 0 for l in clause):
            raise ValueError("literal 0 is not allowed")
        self.clauses.append(clause)
        top = max(abs(l) for l in clause)
        if top > self.num_vars:
            self.num_vars = top

    def extend(self, clauses: Iterable[Iterable[int]]) -> None:
        """Add many clauses."""
        for clause in clauses:
            self.add_clause(clause)

    def copy(self) -> "CNF":
        """Shallow copy (clauses are immutable tuples)."""
        return CNF(num_vars=self.num_vars, clauses=list(self.clauses))

    def to_dimacs(self) -> str:
        """Serialise in DIMACS format (useful for debugging/export)."""
        lines = [f"p cnf {self.num_vars} {len(self.clauses)}"]
        for clause in self.clauses:
            lines.append(" ".join(str(l) for l in clause) + " 0")
        return "\n".join(lines) + "\n"

    @classmethod
    def from_dimacs(cls, text: str) -> "CNF":
        """Parse a DIMACS CNF file."""
        cnf = cls()
        for raw in text.splitlines():
            line = raw.strip()
            if not line or line.startswith(("c", "%")):
                continue
            if line.startswith("p"):
                parts = line.split()
                if len(parts) >= 3:
                    cnf.num_vars = max(cnf.num_vars, int(parts[2]))
                continue
            literals = [int(tok) for tok in line.split()]
            if literals and literals[-1] == 0:
                literals = literals[:-1]
            if literals:
                cnf.add_clause(literals)
        return cnf

    def __len__(self) -> int:
        return len(self.clauses)
