"""Tseitin encoding of circuits into CNF.

Every net of a (combinational view of a) circuit gets a SAT variable; each
gate contributes the standard Tseitin clauses relating its output variable to
its input variables.  The encoder also supports *instantiating* the same
circuit multiple times under different net-name prefixes, which is how the
attacks build miters and time-frame unrollings without copying circuits.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.netlist.circuit import Circuit, CircuitError
from repro.netlist.gates import Gate, GateType
from repro.sat.cnf import CNF


class TseitinEncoder:
    """Maps circuit nets to SAT variables and emits gate clauses.

    A single encoder instance can encode several circuits / circuit copies
    into the same variable space, sharing variables whenever net names are
    shared (e.g. key inputs common to all time frames of an unrolling).
    """

    def __init__(self, cnf: Optional[CNF] = None) -> None:
        self.cnf = cnf if cnf is not None else CNF()
        self.varmap: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # variables and literals
    # ------------------------------------------------------------------ #
    def var(self, net: str) -> int:
        """Variable for ``net``, allocating it on first use."""
        existing = self.varmap.get(net)
        if existing is not None:
            return existing
        variable = self.cnf.new_var()
        self.varmap[net] = variable
        return variable

    def literal(self, net: str, value: bool) -> int:
        """Literal asserting that ``net`` equals ``value``."""
        variable = self.var(net)
        return variable if value else -variable

    def has(self, net: str) -> bool:
        """True if ``net`` already has a variable."""
        return net in self.varmap

    # ------------------------------------------------------------------ #
    # gate clauses
    # ------------------------------------------------------------------ #
    def _encode_and(self, out: int, ins: Sequence[int], *, negate: bool = False) -> None:
        out_lit = -out if negate else out
        for lit in ins:
            self.cnf.add_clause([-out_lit, lit])
        self.cnf.add_clause([out_lit] + [-lit for lit in ins])

    def _encode_or(self, out: int, ins: Sequence[int], *, negate: bool = False) -> None:
        out_lit = -out if negate else out
        for lit in ins:
            self.cnf.add_clause([out_lit, -lit])
        self.cnf.add_clause([-out_lit] + list(ins))

    def _encode_xor2(self, out: int, a: int, b: int, *, negate: bool = False) -> None:
        out_lit = -out if negate else out
        self.cnf.add_clause([-out_lit, a, b])
        self.cnf.add_clause([-out_lit, -a, -b])
        self.cnf.add_clause([out_lit, -a, b])
        self.cnf.add_clause([out_lit, a, -b])

    def _encode_xor(self, out: int, ins: Sequence[int], *, negate: bool = False) -> None:
        if len(ins) == 2:
            self._encode_xor2(out, ins[0], ins[1], negate=negate)
            return
        # Chain: t1 = a xor b ; t2 = t1 xor c ; ...
        prev = ins[0]
        for index, lit in enumerate(ins[1:], start=1):
            last = index == len(ins) - 1
            target = out if last else self.cnf.new_var()
            self._encode_xor2(target, prev, lit, negate=negate and last)
            prev = target

    def encode_gate(self, gate: Gate, *, prefix: str = "") -> None:
        """Emit clauses for one gate (optionally with prefixed net names)."""
        out = self.var(prefix + gate.output)
        ins = [self.var(prefix + name) for name in gate.inputs]
        gtype = gate.gtype
        if gtype == GateType.BUF:
            self.cnf.add_clause([-out, ins[0]])
            self.cnf.add_clause([out, -ins[0]])
        elif gtype == GateType.NOT:
            self.cnf.add_clause([-out, -ins[0]])
            self.cnf.add_clause([out, ins[0]])
        elif gtype == GateType.AND:
            self._encode_and(out, ins)
        elif gtype == GateType.NAND:
            self._encode_and(out, ins, negate=True)
        elif gtype == GateType.OR:
            self._encode_or(out, ins)
        elif gtype == GateType.NOR:
            self._encode_or(out, ins, negate=True)
        elif gtype == GateType.XOR:
            self._encode_xor(out, ins)
        elif gtype == GateType.XNOR:
            self._encode_xor(out, ins, negate=True)
        elif gtype == GateType.MUX:
            sel, d0, d1 = ins
            # out = sel ? d1 : d0
            self.cnf.add_clause([-out, sel, d0])
            self.cnf.add_clause([-out, -sel, d1])
            self.cnf.add_clause([out, sel, -d0])
            self.cnf.add_clause([out, -sel, -d1])
        elif gtype == GateType.CONST0:
            self.cnf.add_clause([-out])
        elif gtype == GateType.CONST1:
            self.cnf.add_clause([out])
        else:  # pragma: no cover - exhaustive above
            raise CircuitError(f"cannot encode gate type {gtype}")

    # ------------------------------------------------------------------ #
    # circuit-level encoding
    # ------------------------------------------------------------------ #
    def encode(self, circuit: Circuit, *, prefix: str = "",
               shared_nets: Optional[Mapping[str, str]] = None) -> CNF:
        """Encode the combinational gates of ``circuit``.

        Parameters
        ----------
        prefix:
            Prepended to every net name; use distinct prefixes to place
            independent copies of the same circuit in one CNF.
        shared_nets:
            Optional mapping ``local net -> global net`` applied *before*
            prefixing; nets mapped to the same global name share a variable
            (used to tie key inputs across copies / time frames).

        Flip-flops are **not** encoded; callers decide how to connect the
        sequential boundary (pseudo-inputs for the combinational attack,
        frame-to-frame wiring for the unrolling attacks).
        """
        shared = dict(shared_nets or {})

        def resolve(net: str) -> str:
            if net in shared:
                return shared[net]
            return prefix + net

        for out in circuit.topological_order():
            gate = circuit.gates[out]
            resolved = Gate(
                output=resolve(gate.output),
                gtype=gate.gtype,
                inputs=tuple(resolve(i) for i in gate.inputs),
            )
            self.encode_gate(resolved)
        # Touch IO nets so they always have variables even if undriven/unused.
        for net in circuit.inputs:
            self.var(resolve(net))
        for net in circuit.outputs:
            self.var(resolve(net))
        for q, ff in circuit.dffs.items():
            self.var(resolve(q))
            self.var(resolve(ff.d))
        return self.cnf

    # ------------------------------------------------------------------ #
    # constraint helpers used by the attacks
    # ------------------------------------------------------------------ #
    def add_equality(self, net_a: str, net_b: str) -> None:
        """Constrain two nets to be equal."""
        a, b = self.var(net_a), self.var(net_b)
        self.cnf.add_clause([-a, b])
        self.cnf.add_clause([a, -b])

    def add_value(self, net: str, value: int) -> None:
        """Constrain a net to a constant value."""
        self.cnf.add_clause([self.literal(net, bool(value))])

    def add_assignment(self, values: Mapping[str, int], *, prefix: str = "") -> None:
        """Constrain many nets to constant values."""
        for net, value in values.items():
            self.add_value(prefix + net, value)

    def encode_any(self, nets: Sequence[str]) -> str:
        """Add logic asserting a fresh net true iff any of ``nets`` is true.

        Used to extend comparison networks incrementally: OR a new frame
        range's difference net with the previous one instead of re-encoding
        the whole comparator.
        """
        if not nets:
            raise ValueError("encode_any needs at least one net")
        any_name = f"__any_{len(self.varmap)}"
        any_var = self.var(any_name)
        self._encode_or(any_var, [self.var(net) for net in nets])
        return any_name

    def encode_inequality(self, nets_a: Sequence[str], nets_b: Sequence[str]) -> str:
        """Add logic asserting that two equal-length net vectors differ.

        Returns the name of a fresh net that is true iff the vectors differ
        in at least one position (the caller typically assumes it true).
        """
        if len(nets_a) != len(nets_b):
            raise ValueError("vectors must have equal length")
        diff_vars: List[int] = []
        for a_net, b_net in zip(nets_a, nets_b):
            diff = self.cnf.new_var()
            self._encode_xor2(diff, self.var(a_net), self.var(b_net))
            diff_vars.append(diff)
        any_name = f"__diff_{len(self.varmap)}"
        any_var = self.var(any_name)
        self._encode_or(any_var, diff_vars)
        return any_name
