"""A CDCL SAT solver.

This is a from-scratch conflict-driven clause-learning solver in the MiniSAT
tradition: two-watched-literal propagation, first-UIP conflict analysis,
VSIDS-style variable activities, phase saving, Luby restarts and
assumption-based incremental solving.  It is deliberately pure Python — the
reproduction is not allowed external solver binaries — so the attacks built
on top keep their benchmark circuits modest in size.

The public surface is small:

``add_clause`` / ``add_clauses``
    Grow the clause database (incremental: clauses persist across calls).
``solve(assumptions=…, conflict_limit=…, time_limit=…)``
    Returns ``True`` (SAT), ``False`` (UNSAT under the assumptions) or
    ``None`` when a resource limit was hit.
``model()``
    The satisfying assignment of the most recent SAT answer.
"""

from __future__ import annotations

import heapq
import os
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence


@dataclass
class SolverStats:
    """Counters accumulated over the lifetime of a solver instance."""

    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    learned_clauses: int = 0
    restarts: int = 0
    solve_calls: int = 0


def _luby(i: int) -> int:
    """The i-th element (1-based) of the Luby restart sequence.

    Uses the classic MiniSAT formulation: find the finite subsequence that
    contains index ``i`` and the position within it.
    """
    x = i - 1  # 0-based index
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) // 2
        seq -= 1
        x = x % size
    return 1 << seq


class Solver:
    """Incremental CDCL SAT solver over integer (DIMACS-style) literals."""

    _UNASSIGNED = 0

    def __init__(self) -> None:
        self.num_vars = 0
        self.clauses: List[List[int]] = []
        self._learned_start = 0  # clauses before this index are problem clauses
        self._watches: Dict[int, List[int]] = {}
        self._assign: List[int] = [0]  # 1-indexed; 0 unassigned, +1 true, -1 false
        self._level: List[int] = [0]
        self._reason: List[Optional[int]] = [None]
        self._activity: List[float] = [0.0]
        self._phase: List[int] = [0]
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._qhead = 0
        self._order_heap: List = []
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._model: Dict[int, int] = {}
        self._unsat = False  # a top-level empty clause / contradiction exists
        self.stats = SolverStats()
        # Optional event-trace hooks (see repro.trace): the attached writer
        # and the conflict-sampling stride.  Checked only on the conflict and
        # restart branches — never on the propagation inner loop — so the
        # tracing-off cost is one attribute test per conflict.
        self.trace = None
        self.trace_stride = 1
        # Optional DRUP proof hook (see repro.check.certify): a ProofLogger
        # recording learned/deleted clauses so UNSAT answers are checkable
        # by an independent replayer.  Same cost model as tracing: one
        # attribute test per conflict when off.
        self.proof = None
        # Debug sanitizer (see repro.check.solver): audit watch lists, trail
        # and implication graph at every decision point.  Same cost model as
        # tracing: one attribute test per decision when off.
        self.check_invariants = os.environ.get("REPRO_CHECK_SOLVER", "") == "1"

    # ------------------------------------------------------------------ #
    # variable / clause management
    # ------------------------------------------------------------------ #
    def new_var(self) -> int:
        """Allocate a fresh variable and return its index."""
        self.num_vars += 1
        self._assign.append(0)
        self._level.append(0)
        self._reason.append(None)
        self._activity.append(0.0)
        self._phase.append(0)
        return self.num_vars

    def _ensure_var(self, var: int) -> None:
        while self.num_vars < var:
            self.new_var()

    def add_clause(self, literals: Iterable[int]) -> None:
        """Add a clause.  Must be called at decision level 0 (between solves)."""
        clause = []
        seen = set()
        for lit in literals:
            lit = int(lit)
            if lit == 0:
                raise ValueError("literal 0 is not allowed")
            if -lit in seen:
                return  # tautology, skip
            if lit in seen:
                continue
            seen.add(lit)
            clause.append(lit)
            self._ensure_var(abs(lit))
        if not clause:
            self._unsat = True
            return
        # Drop literals already false at level 0, stop if already satisfied.
        simplified = []
        for lit in clause:
            value = self._value(lit)
            if value == 1 and self._level[abs(lit)] == 0:
                return
            if value == -1 and self._level[abs(lit)] == 0:
                continue
            simplified.append(lit)
        if not simplified:
            self._unsat = True
            return
        if len(simplified) == 1:
            if not self._enqueue(simplified[0], None):
                self._unsat = True
            elif self._propagate() is not None:
                self._unsat = True
            return
        index = len(self.clauses)
        self.clauses.append(simplified)
        self._watch(simplified[0], index)
        self._watch(simplified[1], index)

    def add_clauses(self, clauses: Iterable[Iterable[int]]) -> None:
        """Add many clauses."""
        for clause in clauses:
            self.add_clause(clause)

    def _watch(self, lit: int, clause_index: int) -> None:
        self._watches.setdefault(-lit, []).append(clause_index)

    # ------------------------------------------------------------------ #
    # assignment helpers
    # ------------------------------------------------------------------ #
    def _value(self, lit: int) -> int:
        """+1 if lit is true, -1 if false, 0 if unassigned."""
        value = self._assign[abs(lit)]
        if value == 0:
            return 0
        return value if lit > 0 else -value

    def _enqueue(self, lit: int, reason: Optional[int]) -> bool:
        value = self._value(lit)
        if value == 1:
            return True
        if value == -1:
            return False
        var = abs(lit)
        self._assign[var] = 1 if lit > 0 else -1
        self._level[var] = self._decision_level()
        self._reason[var] = reason
        self._trail.append(lit)
        return True

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _new_decision_level(self) -> None:
        self._trail_lim.append(len(self._trail))

    def _backtrack(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        boundary = self._trail_lim[level]
        for lit in reversed(self._trail[boundary:]):
            var = abs(lit)
            self._phase[var] = self._assign[var]
            self._assign[var] = 0
            self._reason[var] = None
            self._heap_push(var)
        del self._trail[boundary:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    # ------------------------------------------------------------------ #
    # propagation
    # ------------------------------------------------------------------ #
    def _propagate(self) -> Optional[int]:
        """Unit propagation.  Returns a conflicting clause index or None."""
        while self._qhead < len(self._trail):  # hot-loop
            lit = self._trail[self._qhead]
            self._qhead += 1
            self.stats.propagations += 1
            watching = self._watches.get(lit)
            if not watching:
                continue
            new_watching: List[int] = []
            conflict: Optional[int] = None
            i = 0
            n = len(watching)
            while i < n:
                clause_index = watching[i]
                i += 1
                clause = self.clauses[clause_index]
                # Normalise so the falsified watched literal is clause[1].
                false_lit = -lit
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) == 1:
                    new_watching.append(clause_index)
                    continue
                # Look for a replacement watch.
                found = False
                for k in range(2, len(clause)):
                    if self._value(clause[k]) != -1:
                        clause[1], clause[k] = clause[k], clause[1]
                        self._watch(clause[1], clause_index)
                        found = True
                        break
                if found:
                    continue
                # Clause is unit or conflicting.
                new_watching.append(clause_index)
                if not self._enqueue(first, clause_index):
                    conflict = clause_index
                    # keep remaining watches
                    new_watching.extend(watching[i:])
                    break
            self._watches[lit] = new_watching
            if conflict is not None:
                return conflict
        return None

    # ------------------------------------------------------------------ #
    # conflict analysis
    # ------------------------------------------------------------------ #
    def _bump(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._assign[var] == 0:
            self._heap_push(var)
        if self._activity[var] > 1e100:
            for v in range(1, self.num_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100

    def _decay_activities(self) -> None:
        self._var_inc /= self._var_decay

    def _analyze(self, conflict_index: int) -> (List[int], int):
        """First-UIP conflict analysis.

        Returns the learned clause (asserting literal first) and the level to
        backtrack to.
        """
        learned: List[int] = [0]  # placeholder for the asserting literal
        seen = [False] * (self.num_vars + 1)
        counter = 0
        lit = None
        clause = self.clauses[conflict_index]
        index = len(self._trail) - 1
        current_level = self._decision_level()

        while True:
            for reason_lit in clause:
                if lit is not None and reason_lit == lit:
                    continue
                var = abs(reason_lit)
                if not seen[var] and self._level[var] > 0:
                    seen[var] = True
                    self._bump(var)
                    if self._level[var] >= current_level:
                        counter += 1
                    else:
                        learned.append(reason_lit)
            # find next literal to expand (most recent on trail at current level)
            while not seen[abs(self._trail[index])]:
                index -= 1
            lit = self._trail[index]
            var = abs(lit)
            seen[var] = False
            counter -= 1
            index -= 1
            if counter == 0:
                break
            reason_index = self._reason[var]
            assert reason_index is not None, "decision reached before UIP"
            clause = self.clauses[reason_index]
        learned[0] = -lit

        if len(learned) == 1:
            return learned, 0
        # Backtrack level: highest level among the non-asserting literals.
        max_index = 1
        max_level = self._level[abs(learned[1])]
        for k in range(2, len(learned)):
            lvl = self._level[abs(learned[k])]
            if lvl > max_level:
                max_level = lvl
                max_index = k
        learned[1], learned[max_index] = learned[max_index], learned[1]
        return learned, max_level

    # ------------------------------------------------------------------ #
    # decisions
    # ------------------------------------------------------------------ #
    def _heap_push(self, var: int) -> None:
        heapq.heappush(self._order_heap, (-self._activity[var], var))

    def _pick_branch_variable(self) -> Optional[int]:
        """Highest-activity unassigned variable (lazy-deletion heap).

        Heap entries can be stale (old activity, or the variable got assigned
        since being pushed); stale entries are skipped or re-pushed with the
        current activity.  Variables never pushed (activity 0) are covered by
        the fallback linear scan, which also refills the heap.
        """
        while self._order_heap:
            neg_activity, var = heapq.heappop(self._order_heap)
            if self._assign[var] != 0:
                continue
            if -neg_activity != self._activity[var]:
                self._heap_push(var)
                continue
            return var
        # Heap exhausted: rebuild it from all unassigned variables.
        unassigned = [v for v in range(1, self.num_vars + 1) if self._assign[v] == 0]
        if not unassigned:
            return None
        for var in unassigned:
            self._heap_push(var)
        return max(unassigned, key=lambda v: self._activity[v])

    # ------------------------------------------------------------------ #
    # main search
    # ------------------------------------------------------------------ #
    def solve(
        self,
        assumptions: Optional[Sequence[int]] = None,
        *,
        conflict_limit: Optional[int] = None,
        time_limit: Optional[float] = None,
    ) -> Optional[bool]:
        """Run the CDCL search.

        Parameters
        ----------
        assumptions:
            Literals assumed true for this call only (incremental interface).
        conflict_limit:
            Abort with ``None`` after this many conflicts.
        time_limit:
            Abort with ``None`` after this many seconds of wall-clock time.
        """
        self.stats.solve_calls += 1
        if self._unsat:
            return False
        assumptions = list(assumptions or [])
        for lit in assumptions:
            self._ensure_var(abs(lit))
        num_assumptions = len(assumptions)

        self._backtrack(0)
        if self._propagate() is not None:
            self._unsat = True
            return False

        deadline = time.monotonic() + time_limit if time_limit else None
        conflicts_this_call = 0
        restart_index = 1
        restart_budget = 32 * _luby(restart_index)
        conflicts_since_restart = 0

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                conflicts_this_call += 1
                conflicts_since_restart += 1
                if self._decision_level() == 0:
                    self._unsat = True
                    return False
                if self._decision_level() <= num_assumptions:
                    # Conflict depends only on assumptions: UNSAT under them.
                    self._backtrack(0)
                    return False
                learned, back_level = self._analyze(conflict)
                if self.proof is not None:
                    # Learned clauses are RUP over the database that produced
                    # the conflict, which is what the DRUP checker replays.
                    self.proof.learned(learned)
                if self.trace is not None and (
                    self.stats.conflicts % self.trace_stride == 0
                ):
                    # LBD (distinct decision levels in the learned clause) is
                    # only meaningful before backtracking clears the levels.
                    levels = self._level
                    self.trace.emit(
                        "conflict",
                        conflicts=self.stats.conflicts,
                        decisions=self.stats.decisions,
                        propagations=self.stats.propagations,
                        learned=self.stats.learned_clauses,
                        level=self._decision_level(),
                        lbd=len({levels[abs(lit)] for lit in learned}),
                        learned_len=len(learned),
                    )
                back_level = max(back_level, num_assumptions)
                self._backtrack(back_level)
                if len(learned) == 1:
                    if not self._enqueue(learned[0], None):
                        self._unsat = True
                        return False
                else:
                    index = len(self.clauses)
                    self.clauses.append(learned)
                    self.stats.learned_clauses += 1
                    self._watch(learned[0], index)
                    self._watch(learned[1], index)
                    self._enqueue(learned[0], index)
                self._decay_activities()

                if conflict_limit is not None and conflicts_this_call >= conflict_limit:
                    self._backtrack(0)
                    return None
                if deadline is not None and time.monotonic() > deadline:
                    self._backtrack(0)
                    return None
                if conflicts_since_restart >= restart_budget:
                    self.stats.restarts += 1
                    if self.trace is not None:
                        self.trace.emit(
                            "restart",
                            restarts=self.stats.restarts,
                            conflicts=self.stats.conflicts,
                        )
                    restart_index += 1
                    restart_budget = 32 * _luby(restart_index)
                    conflicts_since_restart = 0
                    self._backtrack(min(num_assumptions, self._decision_level()))
                continue

            # No conflict: propagation quiesced — audit the solver state
            # before committing to the next decision (debug flag only).
            if self.check_invariants:
                self._run_invariant_checks()

            # Place assumptions first, then decide.
            if self._decision_level() < num_assumptions:
                lit = assumptions[self._decision_level()]
                value = self._value(lit)
                if value == 1:
                    # Already satisfied: open a dummy level to keep indices aligned.
                    self._new_decision_level()
                    continue
                if value == -1:
                    self._backtrack(0)
                    return False
                self._new_decision_level()
                self._enqueue(lit, None)
                continue

            var = self._pick_branch_variable()
            if var is None:
                # All variables assigned: SAT.
                self._model = {
                    v: (1 if self._assign[v] == 1 else 0)
                    for v in range(1, self.num_vars + 1)
                }
                self._backtrack(0)
                return True
            self.stats.decisions += 1
            if deadline is not None and self.stats.decisions % 512 == 0 and time.monotonic() > deadline:
                self._backtrack(0)
                return None
            self._new_decision_level()
            phase = self._phase[var]
            lit = var if phase == 1 else -var
            self._enqueue(lit, None)

    # ------------------------------------------------------------------ #
    # results
    # ------------------------------------------------------------------ #
    def model(self) -> Dict[int, int]:
        """The satisfying assignment (var -> 0/1) of the last SAT answer."""
        return dict(self._model)

    def model_literal(self, lit: int) -> int:
        """Value (0/1) of a literal under the last model."""
        value = self._model.get(abs(lit), 0)
        return value if lit > 0 else 1 - value

    def _run_invariant_checks(self) -> None:
        """Debug-flag hook: raise SolverStateError on any broken invariant."""
        from repro.check.solver import assert_solver_invariants

        assert_solver_invariants(self)


def solve_cnf(clauses: Iterable[Iterable[int]], assumptions: Optional[Sequence[int]] = None,
              **kwargs) -> Optional[bool]:
    """One-shot convenience wrapper: build a solver, add ``clauses``, solve."""
    solver = Solver()
    solver.add_clauses(clauses)
    return solver.solve(assumptions=assumptions, **kwargs)
