"""Unified incremental solving sessions with end-to-end solver telemetry.

Every oracle-guided attack in :mod:`repro.attacks` used to hand-roll its own
``TseitinEncoder`` + ``Solver`` pair, which meant solver statistics died
inside each attack and there was no single place to tune or instrument the
CDCL hot loop.  :class:`SolveSession` is that place:

* **backend registry** — sessions construct their solver through a small
  name -> factory registry (:func:`register_solver_backend`), shipping the
  reference CDCL solver as ``"cdcl"`` and the arena-flattened variant
  (:class:`repro.sat.arena.ArenaSolver`) as ``"cdcl-arena"``;
* **incremental queries** — the session keeps one encoder and one solver in
  sync (clauses added to the encoder flow into the solver before each
  query) and exposes assumption-scoped :meth:`SolveSession.solve` calls;
* **budget accounting** — a session carries a default per-call conflict
  limit and an absolute wall-clock deadline; every query is automatically
  clamped to the remaining budget;
* **telemetry** — each query folds the solver's counter deltas, the answer
  and the per-phase wall time into a serializable :class:`SolverTelemetry`,
  which attacks attach to ``AttackResult.details["solver"]`` and the
  campaign executor snapshots onto every result record (via
  :func:`capture_solver_telemetry`) next to ``cpu_seconds``/``max_rss_kb``.
"""

from __future__ import annotations

import itertools
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.sat.arena import ArenaSolver
from repro.sat.solver import Solver
from repro.sat.tseitin import TseitinEncoder
from repro.trace.writer import active_tracer

#: Process-wide session ids, so trace events from concurrent sessions in one
#: attack (e.g. RANE's synthesis + verification sides) stay attributable.
_SESSION_IDS = itertools.count(1)

#: Counter fields shared by SolverStats and SolverTelemetry.
_COUNTER_FIELDS = (
    "decisions",
    "propagations",
    "conflicts",
    "learned_clauses",
    "restarts",
    "solve_calls",
)

#: Default backend used when no ``solver_backend`` is requested.
DEFAULT_BACKEND = "cdcl"


@dataclass
class SolverTelemetry:
    """Serializable, mergeable solver counters for one session (or many).

    ``phase_seconds`` maps a caller-chosen phase label (``"dip-search"``,
    ``"key-extract"``, ``"verify"``, …) to the wall-clock seconds spent in
    solver calls tagged with that phase; ``solve_seconds`` is the total.
    ``sat`` / ``unsat`` / ``limited`` count the per-call answers (``limited``
    = the call hit its conflict or time budget and returned ``None``).
    """

    backend: str = ""
    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    learned_clauses: int = 0
    restarts: int = 0
    solve_calls: int = 0
    sat: int = 0
    unsat: int = 0
    limited: int = 0
    solve_seconds: float = 0.0
    phase_seconds: Dict[str, float] = field(default_factory=dict)

    def note_call(
        self,
        deltas: Mapping[str, int],
        *,
        answer: Optional[bool],
        seconds: float,
        phase: str,
    ) -> None:
        """Fold one solver call (counter deltas + outcome) into the totals."""
        for name in _COUNTER_FIELDS:
            setattr(self, name, getattr(self, name) + int(deltas.get(name, 0)))
        if answer is True:
            self.sat += 1
        elif answer is False:
            self.unsat += 1
        else:
            self.limited += 1
        self.solve_seconds += seconds
        self.phase_seconds[phase] = self.phase_seconds.get(phase, 0.0) + seconds

    def merge(self, other: "SolverTelemetry") -> None:
        """Fold another telemetry block into this one (aggregation)."""
        if other.backend:
            if not self.backend:
                self.backend = other.backend
            elif self.backend != other.backend:
                self.backend = "mixed"
        for name in _COUNTER_FIELDS + ("sat", "unsat", "limited"):
            setattr(self, name, getattr(self, name) + getattr(other, name))
        self.solve_seconds += other.solve_seconds
        for phase, seconds in other.phase_seconds.items():
            self.phase_seconds[phase] = self.phase_seconds.get(phase, 0.0) + seconds

    def reset(self) -> None:
        """Zero every counter (the backend label is kept)."""
        for name in _COUNTER_FIELDS + ("sat", "unsat", "limited"):
            setattr(self, name, 0)
        self.solve_seconds = 0.0
        self.phase_seconds = {}

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (stored on attack results and campaign records)."""
        payload: Dict[str, object] = {"backend": self.backend}
        for name in _COUNTER_FIELDS + ("sat", "unsat", "limited"):
            payload[name] = getattr(self, name)
        payload["solve_seconds"] = self.solve_seconds
        payload["phase_seconds"] = dict(self.phase_seconds)
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SolverTelemetry":
        telemetry = cls(backend=str(data.get("backend", "")))
        for name in _COUNTER_FIELDS + ("sat", "unsat", "limited"):
            setattr(telemetry, name, int(data.get(name, 0)))  # type: ignore[arg-type]
        telemetry.solve_seconds = float(data.get("solve_seconds", 0.0))  # type: ignore[arg-type]
        phases = data.get("phase_seconds", {})
        if isinstance(phases, Mapping):
            telemetry.phase_seconds = {
                str(phase): float(seconds) for phase, seconds in phases.items()  # type: ignore[arg-type]
            }
        return telemetry


# --------------------------------------------------------------------------- #
# backend registry
# --------------------------------------------------------------------------- #
SolverFactory = Callable[[], object]

_BACKENDS: Dict[str, SolverFactory] = {}


def register_solver_backend(
    name: str, factory: SolverFactory, *, override: bool = False
) -> None:
    """Bind ``name`` to a zero-argument solver factory."""
    if not override and name in _BACKENDS:
        raise ValueError(f"solver backend {name!r} is already registered")
    _BACKENDS[name] = factory


def solver_backends() -> Tuple[str, ...]:
    """Registered backend names (sorted, for CLI choices and error text)."""
    return tuple(sorted(_BACKENDS))


def create_solver(backend: str = DEFAULT_BACKEND):
    """Instantiate a solver through the registry."""
    factory = _BACKENDS.get(backend)
    if factory is None:
        raise ValueError(
            f"unknown solver backend {backend!r}; registered backends: "
            f"{', '.join(solver_backends())}"
        )
    return factory()


register_solver_backend("cdcl", Solver)
register_solver_backend("cdcl-arena", ArenaSolver)


# --------------------------------------------------------------------------- #
# process-wide capture (the campaign executor's per-attempt snapshot)
# --------------------------------------------------------------------------- #
_CAPTURE_FRAMES: List[SolverTelemetry] = []


@contextmanager
def capture_solver_telemetry() -> Iterator[SolverTelemetry]:
    """Aggregate every session's solver activity inside the ``with`` block.

    The campaign executor wraps each job attempt in this, so every result
    record carries the attempt's end-to-end solver telemetry no matter how
    many sessions (attack + verification + …) the job created.  Frames nest:
    each active frame sees every call.
    """
    frame = SolverTelemetry()
    _CAPTURE_FRAMES.append(frame)
    try:
        yield frame
    finally:
        # Remove by identity, not ==: two idle frames compare equal (dataclass
        # equality) and list.remove would pop the wrong one.
        for index in range(len(_CAPTURE_FRAMES) - 1, -1, -1):
            if _CAPTURE_FRAMES[index] is frame:
                del _CAPTURE_FRAMES[index]
                break


# --------------------------------------------------------------------------- #
# the session
# --------------------------------------------------------------------------- #
class SolveSession:
    """One encoder + one backend solver + budgets + telemetry.

    Parameters
    ----------
    backend:
        Registry name of the solver backend (``"cdcl"``, ``"cdcl-arena"``).
    encoder:
        Optional shared :class:`TseitinEncoder` (a fresh one by default).
    conflict_limit:
        Default per-call conflict budget (None = unlimited).
    deadline:
        Absolute ``time.monotonic()`` deadline every call is clamped to.
    telemetry:
        Optional shared :class:`SolverTelemetry` accumulator — pass the same
        object to several sessions (e.g. RANE's synthesis + verification
        sides) to aggregate one attack-wide block.
    proof_path:
        Directory to write UNSAT certificates into (created if missing).
        When set, the backend solver logs DRUP steps into a
        :class:`repro.check.certify.proof.ProofLogger` and every UNSAT
        answer is paired with a ``<label>-sNNN-qNNNN.cnf`` /
        ``<label>-sNNN-qNNNN.drup`` certificate checkable by
        ``repro check proof``; the pairs accumulate in
        :attr:`certificates`.  Disarmed (the default) this costs the
        backends one ``is not None`` test per *conflict* — the same
        zero-cost pattern as the trace hooks.
    proof_label:
        Filename stem for certificates written by this session.
    """

    def __init__(
        self,
        backend: str = DEFAULT_BACKEND,
        *,
        encoder: Optional[TseitinEncoder] = None,
        conflict_limit: Optional[int] = None,
        deadline: Optional[float] = None,
        telemetry: Optional[SolverTelemetry] = None,
        proof_path: Optional[Union[str, Path]] = None,
        proof_label: str = "query",
    ) -> None:
        self.backend = backend
        self.encoder = encoder if encoder is not None else TseitinEncoder()
        self.solver = create_solver(backend)
        self.conflict_limit = conflict_limit
        self.deadline = deadline
        self.telemetry = telemetry if telemetry is not None else SolverTelemetry()
        if not self.telemetry.backend:
            self.telemetry.backend = backend
        elif self.telemetry.backend != backend:
            self.telemetry.backend = "mixed"
        self._synced = 0
        # Event tracing (repro.trace): bind to the writer active at session
        # construction.  With no writer active, every later check is a single
        # ``is not None`` test.
        self.tracer = active_tracer()
        self._session_id = next(_SESSION_IDS)
        self._calls = 0
        # DRUP certification (repro.check.certify): lazily imported so the
        # plain solving path never loads the check package.
        self.proof_dir: Optional[Path] = None
        self.proof_label = proof_label
        self.certificates: List[Tuple[str, str]] = []
        self._proof = None
        if proof_path is not None:
            from repro.check.certify.proof import ProofLogger

            self.proof_dir = Path(proof_path)
            self.proof_dir.mkdir(parents=True, exist_ok=True)
            self._proof = ProofLogger()
            self._attach_proof()
        if self.tracer is not None:
            self.tracer.emit(
                "session", backend=backend, session=self._session_id
            )
            self._attach_trace()

    def _attach_trace(self) -> None:
        """Point the backend solver's trace hooks at the session's writer."""
        tracer = self.tracer
        if tracer is None:
            return
        try:
            self.solver.trace = tracer
            self.solver.trace_stride = tracer.stride
        except AttributeError:
            # Third-party backends without trace hooks still solve fine;
            # they just emit no conflict/restart events.
            pass

    def _attach_proof(self) -> None:
        """Point the backend solver's proof hook at the session's logger."""
        if self._proof is None:
            return
        try:
            self.solver.proof = self._proof
        except AttributeError:
            # Third-party backends without proof hooks still solve fine;
            # their UNSAT answers just come without certificates.
            pass

    # ------------------------------------------------------------- budgets
    def set_deadline(self, deadline: Optional[float]) -> None:
        """Set the absolute ``time.monotonic()`` deadline for later queries."""
        self.deadline = deadline

    def remaining(self) -> Optional[float]:
        """Seconds left until the deadline (None when unbounded)."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - time.monotonic())

    # -------------------------------------------------------------- clauses
    def sync(self) -> None:
        """Flow clauses added to the encoder since the last query into the solver."""
        clauses = self.encoder.cnf.clauses
        if self._synced < len(clauses):
            self.solver.add_clauses(clauses[self._synced:])
            self._synced = len(clauses)

    def reset_solver(self) -> None:
        """Rebuild the backend solver from scratch (non-incremental modes).

        The encoder — and the accumulated telemetry — survive; the next
        :meth:`solve` re-syncs the full CNF into the fresh solver.
        """
        self.solver = create_solver(self.backend)
        self._synced = 0
        self._attach_trace()
        if self._proof is not None:
            # The fresh solver has no learned clauses, so the replay starts
            # over from the original formula.
            self._proof.reset()
            self._attach_proof()

    # -------------------------------------------------------------- queries
    def solve(
        self,
        assumptions: Optional[Sequence[int]] = None,
        *,
        phase: str = "solve",
        conflict_limit: Optional[int] = None,
        time_limit: Optional[float] = None,
    ) -> Optional[bool]:
        """Sync and run one assumption-scoped query under the session budgets.

        ``conflict_limit`` overrides the session default for this call only;
        ``time_limit`` is clamped to the session deadline (whichever is
        tighter), with a small floor so an expired deadline still yields a
        well-defined ``None`` instead of a zero-length limit.  The call's
        counter deltas and wall time are folded into the session telemetry
        under ``phase``, and into every active capture frame.
        """
        self.sync()
        if conflict_limit is None:
            conflict_limit = self.conflict_limit
        remaining = self.remaining()
        if remaining is not None:
            time_limit = remaining if time_limit is None else min(time_limit, remaining)
        if time_limit is not None:
            time_limit = max(time_limit, 0.001)

        stats = self.solver.stats
        before = {name: getattr(stats, name) for name in _COUNTER_FIELDS}
        tracer = self.tracer
        self._calls += 1
        if tracer is not None:
            tracer.emit(
                "solve-begin",
                session=self._session_id,
                call=self._calls,
                phase=phase,
                assumptions=len(assumptions or ()),
            )
        started = time.perf_counter()
        answer = self.solver.solve(
            assumptions=assumptions,
            conflict_limit=conflict_limit,
            time_limit=time_limit,
        )
        seconds = time.perf_counter() - started
        deltas = {
            name: getattr(stats, name) - before[name] for name in _COUNTER_FIELDS
        }
        if tracer is not None:
            tracer.emit(
                "solve-end",
                session=self._session_id,
                call=self._calls,
                phase=phase,
                answer=(
                    "sat" if answer is True
                    else "unsat" if answer is False
                    else "limited"
                ),
                seconds=round(seconds, 6),
                conflicts=deltas["conflicts"],
                decisions=deltas["decisions"],
                propagations=deltas["propagations"],
                learned=deltas["learned_clauses"],
                restarts=deltas["restarts"],
            )
        if answer is False and self._proof is not None:
            self._write_certificate(list(assumptions or ()))
        self.telemetry.note_call(deltas, answer=answer, seconds=seconds, phase=phase)
        for frame in _CAPTURE_FRAMES:
            if not frame.backend:
                frame.backend = self.backend
            elif frame.backend != self.backend:
                frame.backend = "mixed"
            frame.note_call(deltas, answer=answer, seconds=seconds, phase=phase)
        return answer

    # --------------------------------------------------------- certification
    def _write_certificate(self, assumptions: List[int]) -> None:
        """Pair the UNSAT answer just returned with an on-disk certificate.

        The certificate CNF is the clause set the solver has actually seen
        (everything synced so far) with this query's assumptions appended
        as unit clauses; the DRUP file is every step the solver logged
        since its last reset.  Both are exactly what
        ``repro check proof CNF PROOF`` replays.
        """
        from repro.check.certify.proof import write_certificate

        stem = f"{self.proof_label}-s{self._session_id:03d}-q{self._calls:04d}"
        assert self.proof_dir is not None
        cnf_path = self.proof_dir / f"{stem}.cnf"
        proof_path = self.proof_dir / f"{stem}.drup"
        clauses = self.encoder.cnf.clauses[: self._synced]
        num_vars = self.encoder.cnf.num_vars
        write_certificate(
            cnf_path,
            proof_path,
            clauses,
            num_vars,
            assumptions=assumptions,
            steps=self._proof.steps,
        )
        self.certificates.append((str(cnf_path), str(proof_path)))
        if self.tracer is not None:
            self.tracer.emit(
                "certificate",
                session=self._session_id,
                call=self._calls,
                cnf=str(cnf_path),
                proof=str(proof_path),
                steps=len(self._proof.steps),
            )

    # --------------------------------------------------------------- models
    def model(self) -> Dict[int, int]:
        """The satisfying assignment of the most recent SAT answer."""
        return self.solver.model()

    def model_value(self, net: str, default: int = 0) -> int:
        """Value (0/1) of an encoder net under the last model."""
        var = self.encoder.varmap.get(net)
        if var is None:
            return default
        return self.solver.model().get(var, default)

    # ---------------------------------------------------------- conveniences
    def literal(self, net: str, value: bool) -> int:
        return self.encoder.literal(net, value)

    def var(self, net: str) -> int:
        return self.encoder.var(net)
