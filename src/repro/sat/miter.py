"""Miter construction.

A *miter* joins two circuits that share primary inputs and compares their
outputs; the miter output is 1 iff the two circuits disagree on at least one
output for the applied input.  Two flavours are used by the attacks:

* :func:`build_miter` — classic equivalence miter between two circuits
  (shared functional inputs, each side keeps its own key inputs);
* :func:`build_key_miter` — the SAT-attack miter: *two copies of the same
  locked circuit*, shared functional inputs, independent key inputs, outputs
  compared.  A satisfying assignment is a Discriminating Input Pattern (DIP).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.netlist.circuit import Circuit
from repro.netlist.gates import GateType


def _comparison_network(miter: Circuit, pairs: List[Tuple[str, str]], diff_net: str) -> None:
    """Add XOR-per-pair + OR-reduce logic driving ``diff_net``."""
    xor_nets: List[str] = []
    for net_a, net_b in pairs:
        xor_net = miter.fresh_net("miter_xor")
        miter.add_gate(xor_net, GateType.XOR, [net_a, net_b])
        xor_nets.append(xor_net)
    if not xor_nets:
        miter.add_gate(diff_net, GateType.CONST0, [])
    elif len(xor_nets) == 1:
        miter.add_gate(diff_net, GateType.BUF, [xor_nets[0]])
    else:
        miter.add_gate(diff_net, GateType.OR, xor_nets)
    miter.add_output(diff_net)


def build_miter(circuit_a: Circuit, circuit_b: Circuit,
                *, share_keys: bool = False) -> Tuple[Circuit, str]:
    """Build an equivalence miter between two combinational circuits.

    Functional (non-key) inputs with the same name are shared; each side's
    key inputs stay private unless ``share_keys`` is set.  Side A nets are
    prefixed ``A_`` and side B nets ``B_`` except for the shared inputs.
    Returns the miter circuit and the name of its difference output.
    """
    shared_inputs = set(circuit_a.functional_inputs) & set(circuit_b.functional_inputs)
    if share_keys:
        shared_inputs |= set(circuit_a.key_inputs) & set(circuit_b.key_inputs)

    def make_mapping(circuit: Circuit, prefix: str) -> Dict[str, str]:
        return {
            net: (net if net in shared_inputs else f"{prefix}{net}")
            for net in circuit.all_nets()
        }

    copy_a = circuit_a.renamed(make_mapping(circuit_a, "A_"), name="A")
    copy_b = circuit_b.renamed(make_mapping(circuit_b, "B_"), name="B")

    miter = Circuit(name=f"miter_{circuit_a.name}_{circuit_b.name}")
    for net in copy_a.inputs:
        miter.add_input(net, is_key=net in copy_a.key_inputs)
    for net in copy_b.inputs:
        if net not in miter.inputs:
            miter.add_input(net, is_key=net in copy_b.key_inputs)
    miter.gates.update(copy_a.gates)
    miter.gates.update(copy_b.gates)

    shared_outputs = [o for o in circuit_a.outputs if o in set(circuit_b.outputs)]
    pairs = []
    for out in shared_outputs:
        a_name = out if out in shared_inputs else f"A_{out}"
        b_name = out if out in shared_inputs else f"B_{out}"
        pairs.append((a_name, b_name))
    diff_net = "miter_diff"
    _comparison_network(miter, pairs, diff_net)
    return miter, diff_net


def build_key_miter(locked: Circuit) -> Tuple[Circuit, str, List[str], List[str]]:
    """Build the double-key SAT-attack miter for a locked combinational circuit.

    Returns ``(miter, diff_net, keys_a, keys_b)`` where ``keys_a``/``keys_b``
    are the renamed key-input nets of the two copies (order matching
    ``locked.key_inputs``).
    """
    functional = set(locked.functional_inputs)

    def make_mapping(prefix: str) -> Dict[str, str]:
        return {
            net: (net if net in functional else f"{prefix}{net}")
            for net in locked.all_nets()
        }

    copy_a = locked.renamed(make_mapping("KA_"), name="KA")
    copy_b = locked.renamed(make_mapping("KB_"), name="KB")

    miter = Circuit(name=f"keymiter_{locked.name}")
    for net in copy_a.inputs:
        miter.add_input(net, is_key=net in copy_a.key_inputs)
    for net in copy_b.inputs:
        if net not in miter.inputs:
            miter.add_input(net, is_key=net in copy_b.key_inputs)
    miter.gates.update(copy_a.gates)
    miter.gates.update(copy_b.gates)

    pairs = [(f"KA_{out}", f"KB_{out}") for out in locked.outputs]
    diff_net = "miter_diff"
    _comparison_network(miter, pairs, diff_net)

    keys_a = [f"KA_{net}" for net in locked.key_inputs]
    keys_b = [f"KB_{net}" for net in locked.key_inputs]
    return miter, diff_net, keys_a, keys_b
