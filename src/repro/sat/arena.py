"""Arena-backed CDCL solver: the tuned ``"cdcl-arena"`` session backend.

Same algorithm as :class:`repro.sat.solver.Solver` — two-watched-literal
propagation, first-UIP learning, VSIDS activities, phase saving, Luby
restarts, assumption-based incremental solving — but with the clause
database flattened into a single int-list *arena* and the watcher lists
stored in a flat list indexed by encoded literal:

* a clause lives at an integer offset ``ref``: ``arena[ref]`` is its length
  and ``arena[ref+1 : ref+1+len]`` its literals (the two watched literals
  always sit at ``ref+1`` / ``ref+2``);
* ``watches[enc(lit)]`` (``enc(lit) = var<<1 | sign``) lists the refs to
  visit when ``lit`` becomes true, replacing the reference solver's
  dict-of-lists keyed by literal;
* the propagation inner loop is fully inlined — literal values are read
  straight off the assignment array instead of through ``_value()`` /
  ``_enqueue()`` / ``_watch()`` method calls.

In pure Python the method-call and dict overhead dominates unit propagation,
so the flattened loop clears the ``bench_solver_throughput.py`` bar of
>= 1.5x propagations/second over the reference backend while remaining
answer-identical: both solvers are sound and complete, so they return the
same SAT/UNSAT verdict on every formula (models and resource-limited ``None``
answers may differ — heuristic state is not shared).
"""

from __future__ import annotations

import heapq
import os
import time
from typing import Dict, Iterable, List, Optional, Sequence

from repro.sat.solver import SolverStats, _luby


class ArenaSolver:
    """Incremental CDCL solver over DIMACS literals (arena clause storage).

    Public surface matches :class:`repro.sat.solver.Solver`:
    ``add_clause`` / ``add_clauses`` / ``solve`` / ``model`` /
    ``model_literal`` / ``new_var`` / ``stats``.
    """

    def __init__(self) -> None:
        self.num_vars = 0
        self._arena: List[int] = []      # flattened clauses: [len, lit, ...]
        self._watches: List[List[int]] = [[], []]  # enc(lit) -> clause refs
        self._assign: List[int] = [0]    # 1-indexed; 0 / +1 / -1
        self._level: List[int] = [0]
        self._reason: List[int] = [-1]   # clause ref, or -1 for none
        self._activity: List[float] = [0.0]
        self._phase: List[int] = [0]
        self._in_heap: List[bool] = [False]
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._qhead = 0
        self._order_heap: List = []
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._model: Dict[int, int] = {}
        self._unsat = False
        self.stats = SolverStats()
        # Optional event-trace hooks (see repro.trace), mirrored from the
        # reference solver: checked only on conflict/restart branches, never
        # inside the inlined propagation loop.
        self.trace = None
        self.trace_stride = 1
        # Optional DRUP proof hook (see repro.check.certify), mirrored from
        # the reference solver: one attribute test per conflict when off.
        self.proof = None
        # Debug sanitizer (see repro.check.solver), mirrored from the
        # reference solver: audited at decision points only, one attribute
        # test per decision when off.
        self.check_invariants = os.environ.get("REPRO_CHECK_SOLVER", "") == "1"

    # ------------------------------------------------------------------ #
    # variable / clause management
    # ------------------------------------------------------------------ #
    def new_var(self) -> int:
        self.num_vars += 1
        self._assign.append(0)
        self._level.append(0)
        self._reason.append(-1)
        self._activity.append(0.0)
        self._phase.append(0)
        self._in_heap.append(False)
        self._watches.append([])
        self._watches.append([])
        return self.num_vars

    def _ensure_var(self, var: int) -> None:
        while self.num_vars < var:
            self.new_var()

    def _value(self, lit: int) -> int:
        value = self._assign[lit if lit > 0 else -lit]
        if value == 0:
            return 0
        return value if lit > 0 else -value

    def add_clause(self, literals: Iterable[int]) -> None:
        """Add a clause.  Must be called at decision level 0 (between solves)."""
        clause = []
        seen = set()
        for lit in literals:
            lit = int(lit)
            if lit == 0:
                raise ValueError("literal 0 is not allowed")
            if -lit in seen:
                return  # tautology
            if lit in seen:
                continue
            seen.add(lit)
            clause.append(lit)
            self._ensure_var(abs(lit))
        if not clause:
            self._unsat = True
            return
        simplified = []
        for lit in clause:
            value = self._value(lit)
            if value == 1 and self._level[abs(lit)] == 0:
                return
            if value == -1 and self._level[abs(lit)] == 0:
                continue
            simplified.append(lit)
        if not simplified:
            self._unsat = True
            return
        if len(simplified) == 1:
            if not self._enqueue(simplified[0], -1):
                self._unsat = True
            elif self._propagate() >= 0:
                self._unsat = True
            return
        self._store_clause(simplified)

    def add_clauses(self, clauses: Iterable[Iterable[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    def _store_clause(self, literals: Sequence[int]) -> int:
        """Append a clause to the arena, watch its first two literals.

        Watcher lists hold flat ``(ref, blocker)`` pairs — the blocker is a
        literal of the clause (initially the *other* watched literal) whose
        truth lets propagation skip the clause without touching the arena.
        For binary clauses the blocker IS the remaining literal, so they
        propagate straight off the watcher list.
        """
        arena = self._arena
        ref = len(arena)
        arena.append(len(literals))
        arena.extend(literals)
        # Watch literals[0] and literals[1]: visit the clause when either
        # becomes false, i.e. when its negation becomes true.
        watches = self._watches
        first, second = literals[0], literals[1]
        wl = watches[(first << 1 | 1) if first > 0 else (-first << 1)]
        wl.append(ref)
        wl.append(second)
        wl = watches[(second << 1 | 1) if second > 0 else (-second << 1)]
        wl.append(ref)
        wl.append(first)
        return ref

    # ------------------------------------------------------------------ #
    # assignment helpers
    # ------------------------------------------------------------------ #
    def _enqueue(self, lit: int, reason: int) -> bool:
        value = self._value(lit)
        if value == 1:
            return True
        if value == -1:
            return False
        var = abs(lit)
        self._assign[var] = 1 if lit > 0 else -1
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(lit)
        return True

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _backtrack(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        boundary = self._trail_lim[level]
        assign, phase, reason = self._assign, self._phase, self._reason
        in_heap, heap_push = self._in_heap, self._heap_push
        for lit in reversed(self._trail[boundary:]):
            var = lit if lit > 0 else -lit
            phase[var] = assign[var]
            assign[var] = 0
            reason[var] = -1
            if not in_heap[var]:
                heap_push(var)
        del self._trail[boundary:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    # ------------------------------------------------------------------ #
    # propagation (the hot loop: everything inlined, locals bound)
    # ------------------------------------------------------------------ #
    def _propagate(self) -> int:
        """Unit propagation.  Returns a conflicting clause ref or -1."""
        arena = self._arena
        watches = self._watches
        assign = self._assign
        level = self._level
        reason = self._reason
        trail = self._trail
        current_level = len(self._trail_lim)
        propagations = 0
        qhead = self._qhead
        conflict = -1
        while qhead < len(trail):  # hot-loop
            lit = trail[qhead]
            qhead += 1
            propagations += 1
            widx = (lit << 1) if lit > 0 else (-lit << 1 | 1)
            watching = watches[widx]
            if not watching:
                continue
            # ``keep`` is created lazily on the first watcher that moves away:
            # blocker-true skips, binary propagations and unit/conflict
            # clauses all keep their watcher, so the common cascade touches
            # the list read-only and pays zero compaction cost.
            keep: Optional[List[int]] = None
            false_lit = -lit
            i = 0
            n = len(watching)
            while i < n:
                ref = watching[i]
                blocker = watching[i + 1]
                i += 2
                # Blocker true: the clause is satisfied, skip the arena read.
                blocker_value = assign[blocker] if blocker > 0 else -assign[-blocker]
                if blocker_value == 1:
                    if keep is not None:
                        keep.append(ref)
                        keep.append(blocker)
                    continue
                if arena[ref] == 2:
                    # Binary clause: the blocker is the only other literal, so
                    # it is unit (enqueue) or conflicting right here.
                    if keep is not None:
                        keep.append(ref)
                        keep.append(blocker)
                    if blocker_value == -1:
                        conflict = ref
                        if keep is not None:
                            keep.extend(watching[i:])
                        break
                    var = blocker if blocker > 0 else -blocker
                    assign[var] = 1 if blocker > 0 else -1
                    level[var] = current_level
                    reason[var] = ref
                    trail.append(blocker)
                    continue
                # Normalise so the falsified watched literal sits at ref+2.
                if arena[ref + 1] == false_lit:
                    arena[ref + 1] = arena[ref + 2]
                    arena[ref + 2] = false_lit
                first = arena[ref + 1]
                if first == blocker:
                    first_value = blocker_value
                else:
                    first_value = assign[first] if first > 0 else -assign[-first]
                    if first_value == 1:
                        if keep is not None:
                            keep.append(ref)
                            keep.append(first)
                        continue
                # Look for a replacement watch among the tail literals.
                found = False
                for k in range(ref + 3, ref + 1 + arena[ref]):
                    other = arena[k]
                    other_value = assign[other] if other > 0 else -assign[-other]
                    if other_value != -1:
                        arena[ref + 2] = other
                        arena[k] = false_lit
                        moved = watches[(other << 1 | 1) if other > 0
                                        else (-other << 1)]
                        moved.append(ref)
                        moved.append(first)
                        if keep is None:
                            keep = watching[: i - 2]
                        found = True
                        break
                if found:
                    continue
                # Clause is unit or conflicting.
                if keep is not None:
                    keep.append(ref)
                    keep.append(first)
                if first_value == -1:
                    conflict = ref
                    if keep is not None:
                        keep.extend(watching[i:])
                    break
                var = first if first > 0 else -first
                assign[var] = 1 if first > 0 else -1
                level[var] = current_level
                reason[var] = ref
                trail.append(first)
            if keep is not None:
                watches[widx] = keep
            if conflict >= 0:
                break
        self._qhead = qhead
        self.stats.propagations += propagations
        return conflict

    # ------------------------------------------------------------------ #
    # conflict analysis
    # ------------------------------------------------------------------ #
    def _bump(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._assign[var] == 0:
            self._heap_push(var)
        if self._activity[var] > 1e100:
            for v in range(1, self.num_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100

    def _analyze(self, conflict_ref: int):
        """First-UIP conflict analysis over arena clause refs."""
        arena = self._arena
        learned: List[int] = [0]
        seen = [False] * (self.num_vars + 1)
        counter = 0
        lit: Optional[int] = None
        ref = conflict_ref
        index = len(self._trail) - 1
        current_level = len(self._trail_lim)
        levels = self._level

        while True:
            for pos in range(ref + 1, ref + 1 + arena[ref]):
                reason_lit = arena[pos]
                if lit is not None and reason_lit == lit:
                    continue
                var = reason_lit if reason_lit > 0 else -reason_lit
                if not seen[var] and levels[var] > 0:
                    seen[var] = True
                    self._bump(var)
                    if levels[var] >= current_level:
                        counter += 1
                    else:
                        learned.append(reason_lit)
            while not seen[abs(self._trail[index])]:
                index -= 1
            lit = self._trail[index]
            var = abs(lit)
            seen[var] = False
            counter -= 1
            index -= 1
            if counter == 0:
                break
            ref = self._reason[var]
            assert ref >= 0, "decision reached before UIP"
        learned[0] = -lit

        if len(learned) == 1:
            return learned, 0
        max_index = 1
        max_level = levels[abs(learned[1])]
        for k in range(2, len(learned)):
            lvl = levels[abs(learned[k])]
            if lvl > max_level:
                max_level = lvl
                max_index = k
        learned[1], learned[max_index] = learned[max_index], learned[1]
        return learned, max_level

    # ------------------------------------------------------------------ #
    # decisions
    # ------------------------------------------------------------------ #
    def _heap_push(self, var: int) -> None:
        self._in_heap[var] = True
        heapq.heappush(self._order_heap, (-self._activity[var], var))

    def _pick_branch_variable(self) -> Optional[int]:
        while self._order_heap:
            neg_activity, var = heapq.heappop(self._order_heap)
            self._in_heap[var] = False
            if self._assign[var] != 0:
                continue
            if -neg_activity != self._activity[var]:
                self._heap_push(var)
                continue
            return var
        unassigned = [v for v in range(1, self.num_vars + 1) if self._assign[v] == 0]
        if not unassigned:
            return None
        for var in unassigned:
            self._heap_push(var)
        return max(unassigned, key=lambda v: self._activity[v])

    # ------------------------------------------------------------------ #
    # main search
    # ------------------------------------------------------------------ #
    def solve(
        self,
        assumptions: Optional[Sequence[int]] = None,
        *,
        conflict_limit: Optional[int] = None,
        time_limit: Optional[float] = None,
    ) -> Optional[bool]:
        """Run the CDCL search (same contract as the reference solver)."""
        self.stats.solve_calls += 1
        if self._unsat:
            return False
        assumptions = list(assumptions or [])
        for lit in assumptions:
            self._ensure_var(abs(lit))
        num_assumptions = len(assumptions)

        self._backtrack(0)
        if self._propagate() >= 0:
            self._unsat = True
            return False

        deadline = time.monotonic() + time_limit if time_limit else None
        conflicts_this_call = 0
        restart_index = 1
        restart_budget = 32 * _luby(restart_index)
        conflicts_since_restart = 0

        while True:
            conflict = self._propagate()
            if conflict >= 0:
                self.stats.conflicts += 1
                conflicts_this_call += 1
                conflicts_since_restart += 1
                if not self._trail_lim:
                    self._unsat = True
                    return False
                if len(self._trail_lim) <= num_assumptions:
                    self._backtrack(0)
                    return False
                learned, back_level = self._analyze(conflict)
                if self.proof is not None:
                    # Mirrors the reference solver: every learned clause is a
                    # DRUP addition the independent checker re-derives.
                    self.proof.learned(learned)
                if self.trace is not None and (
                    self.stats.conflicts % self.trace_stride == 0
                ):
                    # LBD must be read before backtracking clears the levels.
                    levels = self._level
                    self.trace.emit(
                        "conflict",
                        conflicts=self.stats.conflicts,
                        decisions=self.stats.decisions,
                        propagations=self.stats.propagations,
                        learned=self.stats.learned_clauses,
                        level=len(self._trail_lim),
                        lbd=len({levels[abs(lit)] for lit in learned}),
                        learned_len=len(learned),
                    )
                back_level = max(back_level, num_assumptions)
                self._backtrack(back_level)
                if len(learned) == 1:
                    if not self._enqueue(learned[0], -1):
                        self._unsat = True
                        return False
                else:
                    ref = self._store_clause(learned)
                    self.stats.learned_clauses += 1
                    self._enqueue(learned[0], ref)
                self._var_inc /= self._var_decay

                if conflict_limit is not None and conflicts_this_call >= conflict_limit:
                    self._backtrack(0)
                    return None
                if deadline is not None and time.monotonic() > deadline:
                    self._backtrack(0)
                    return None
                if conflicts_since_restart >= restart_budget:
                    self.stats.restarts += 1
                    if self.trace is not None:
                        self.trace.emit(
                            "restart",
                            restarts=self.stats.restarts,
                            conflicts=self.stats.conflicts,
                        )
                    restart_index += 1
                    restart_budget = 32 * _luby(restart_index)
                    conflicts_since_restart = 0
                    self._backtrack(min(num_assumptions, len(self._trail_lim)))
                continue

            # No conflict: propagation quiesced — audit the solver state
            # before committing to the next decision (debug flag only).
            if self.check_invariants:
                self._run_invariant_checks()

            # Place assumptions first, then decide.
            if len(self._trail_lim) < num_assumptions:
                lit = assumptions[len(self._trail_lim)]
                value = self._value(lit)
                if value == 1:
                    self._trail_lim.append(len(self._trail))
                    continue
                if value == -1:
                    self._backtrack(0)
                    return False
                self._trail_lim.append(len(self._trail))
                self._enqueue(lit, -1)
                continue

            var = (None if len(self._trail) == self.num_vars
                   else self._pick_branch_variable())
            if var is None:
                self._model = {
                    v: (1 if value == 1 else 0)
                    for v, value in enumerate(self._assign)
                }
                self._model.pop(0, None)
                self._backtrack(0)
                return True
            self.stats.decisions += 1
            if (deadline is not None and self.stats.decisions % 512 == 0
                    and time.monotonic() > deadline):
                self._backtrack(0)
                return None
            self._trail_lim.append(len(self._trail))
            phase = self._phase[var]
            self._enqueue(var if phase == 1 else -var, -1)

    # ------------------------------------------------------------------ #
    # results
    # ------------------------------------------------------------------ #
    def model(self) -> Dict[int, int]:
        """The satisfying assignment (var -> 0/1) of the last SAT answer."""
        return dict(self._model)

    def model_literal(self, lit: int) -> int:
        """Value (0/1) of a literal under the last model."""
        value = self._model.get(abs(lit), 0)
        return value if lit > 0 else 1 - value

    def _run_invariant_checks(self) -> None:
        """Debug-flag hook: raise SolverStateError on any broken invariant."""
        from repro.check.solver import assert_solver_invariants

        assert_solver_invariants(self)
