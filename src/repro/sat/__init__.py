"""A self-contained SAT layer: CNF containers, CDCL solver backends and
circuit-to-CNF (Tseitin) encoding plus miter construction.

All oracle-guided attacks in :mod:`repro.attacks` (SAT attack, AppSAT,
DoubleDIP, BMC/"BBO", KC2, RANE) are built on this layer, which stands in for
the MiniSAT/Glucose back-ends embedded in the NEOS and RANE tools used by the
paper.  Attacks reach the solvers through :class:`repro.sat.session.\
SolveSession`, which owns solver construction (via the backend registry:
``"cdcl"`` = the reference solver, ``"cdcl-arena"`` = the arena-flattened
variant), incremental clause syncing, budget accounting and the
:class:`~repro.sat.session.SolverTelemetry` counters every attack and
campaign record carries.
"""

from repro.sat.cnf import CNF, Clause
from repro.sat.solver import Solver, SolverStats
from repro.sat.arena import ArenaSolver
from repro.sat.session import (
    DEFAULT_BACKEND,
    SolveSession,
    SolverTelemetry,
    capture_solver_telemetry,
    create_solver,
    register_solver_backend,
    solver_backends,
)
from repro.sat.tseitin import TseitinEncoder
from repro.sat.miter import build_miter, build_key_miter

__all__ = [
    "CNF",
    "Clause",
    "Solver",
    "SolverStats",
    "ArenaSolver",
    "DEFAULT_BACKEND",
    "SolveSession",
    "SolverTelemetry",
    "capture_solver_telemetry",
    "create_solver",
    "register_solver_backend",
    "solver_backends",
    "TseitinEncoder",
    "build_miter",
    "build_key_miter",
]
