"""A self-contained SAT layer: CNF containers, a CDCL solver and circuit-to-CNF
(Tseitin) encoding plus miter construction.

All oracle-guided attacks in :mod:`repro.attacks` (SAT attack, AppSAT,
DoubleDIP, BMC/"BBO", KC2, RANE) are built on this layer, which stands in for
the MiniSAT/Glucose back-ends embedded in the NEOS and RANE tools used by the
paper.
"""

from repro.sat.cnf import CNF, Clause
from repro.sat.solver import Solver, SolverStats
from repro.sat.tseitin import TseitinEncoder
from repro.sat.miter import build_miter, build_key_miter

__all__ = [
    "CNF",
    "Clause",
    "Solver",
    "SolverStats",
    "TseitinEncoder",
    "build_miter",
    "build_key_miter",
]
