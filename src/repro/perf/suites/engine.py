"""Engine suite: packed bit-parallel simulation versus the scalar reference.

Workload construction is shared with ``benchmarks/bench_engine_throughput.py``
(the pytest wrapper imports :func:`prepared_circuit` / the registered bench
instead of duplicating it).
"""

from __future__ import annotations

import random
from typing import Dict

from repro.perf.harness import Harness
from repro.perf.registry import Bar, perf_benchmark

#: Lanes per packed pass in the speedup workload (one machine word).
BATCH = 64


def prepared_circuit(name: str = "s15850"):
    """An embedded ISCAS'89 combinational view plus a 64-vector batch."""
    from repro.benchmarks_data.iscas89 import load_iscas89

    circuit = load_iscas89(name).circuit.combinational_view()
    rng = random.Random(0)
    vectors = [
        {net: rng.randint(0, 1) for net in circuit.inputs} for _ in range(BATCH)
    ]
    return circuit, vectors


@perf_benchmark(
    "engine.packed_speedup",
    params=dict(num_gates=2000, min_seconds=0.2),
    smoke=dict(num_gates=800, min_seconds=0.05),
    bars=[Bar("speedup", ">=", 10.0, smoke_threshold=5.0)],
    primary="packed_batch",
)
def packed_speedup(harness: Harness, params: Dict[str, object]) -> Dict[str, float]:
    """Packed-engine vectors/second over the scalar simulator on a generated
    ISCAS'89-scale circuit (the >= 10x acceptance bar of PR 1).

    The embedded ISCAS'89 profiles are scaled-down stand-ins (~220 gates);
    the bar is measured on a generated circuit of genuine ISCAS'89 size,
    where gate evaluation (not the pack/unpack transpose) dominates, as it
    does on the real benchmarks.
    """
    from repro.benchmarks_data.generator import random_sequential_circuit
    from repro.engine.packed import PackedSimulator
    from repro.sim.logicsim import CombinationalSimulator

    circuit = random_sequential_circuit(
        "s15850_scale", num_inputs=30, num_outputs=30, num_dffs=50,
        num_gates=int(params["num_gates"]), seed=1,
    ).circuit.combinational_view()
    rng = random.Random(0)
    vectors = [
        {net: rng.randint(0, 1) for net in circuit.inputs} for _ in range(BATCH)
    ]
    scalar = CombinationalSimulator(circuit)
    packed = PackedSimulator(circuit)

    # Results must agree before timing means anything.
    if packed.outputs_batch(vectors) != [scalar.outputs(v) for v in vectors]:
        raise RuntimeError(
            "packed engine disagrees with the scalar reference on the "
            "speedup workload — fix correctness before measuring")

    min_seconds = float(params["min_seconds"])
    scalar_vps = harness.sustained_rate(
        lambda: [scalar.outputs(vector) for vector in vectors],
        units=BATCH, min_seconds=min_seconds,
    )
    packed_vps = harness.sustained_rate(
        lambda: packed.outputs_batch(vectors),
        units=BATCH, min_seconds=min_seconds,
    )
    harness.time_series(
        "packed_batch", lambda: packed.outputs_batch(vectors),
        repeats=5, warmup=1,
    )
    return {
        "scalar_vps": scalar_vps,
        "packed_vps": packed_vps,
        "speedup": packed_vps / scalar_vps,
    }
