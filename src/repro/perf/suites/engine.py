"""Engine suite: packed bit-parallel simulation versus the scalar reference.

Workload construction is shared with ``benchmarks/bench_engine_throughput.py``
(the pytest wrapper imports :func:`prepared_circuit` / the registered bench
instead of duplicating it).
"""

from __future__ import annotations

import random
from typing import Dict

from repro.perf.harness import Harness
from repro.perf.registry import Bar, perf_benchmark

#: Lanes per packed pass in the speedup workload (one machine word).
BATCH = 64

#: Lanes for the wide-batch workloads (thousands of lanes = the numpy
#: backend's home turf; 4096 = 32 bigint tiles = 64 uint64 words).
WIDE_LANES = 4096


def wide_circuit(num_gates: int):
    """A generated ISCAS'89-scale combinational view plus packed stimulus."""
    from repro.benchmarks_data.generator import random_sequential_circuit

    circuit = random_sequential_circuit(
        "s15850_scale", num_inputs=30, num_outputs=30, num_dffs=50,
        num_gates=num_gates, seed=1,
    ).circuit.combinational_view()
    return circuit


def prepared_circuit(name: str = "s15850"):
    """An embedded ISCAS'89 combinational view plus a 64-vector batch."""
    from repro.benchmarks_data.iscas89 import load_iscas89

    circuit = load_iscas89(name).circuit.combinational_view()
    rng = random.Random(0)
    vectors = [
        {net: rng.randint(0, 1) for net in circuit.inputs} for _ in range(BATCH)
    ]
    return circuit, vectors


@perf_benchmark(
    "engine.packed_speedup",
    params=dict(num_gates=2000, min_seconds=0.2),
    smoke=dict(num_gates=800, min_seconds=0.05),
    bars=[Bar("speedup", ">=", 10.0, smoke_threshold=5.0)],
    primary="packed_batch",
)
def packed_speedup(harness: Harness, params: Dict[str, object]) -> Dict[str, float]:
    """Packed-engine vectors/second over the scalar simulator on a generated
    ISCAS'89-scale circuit (the >= 10x acceptance bar of PR 1).

    The embedded ISCAS'89 profiles are scaled-down stand-ins (~220 gates);
    the bar is measured on a generated circuit of genuine ISCAS'89 size,
    where gate evaluation (not the pack/unpack transpose) dominates, as it
    does on the real benchmarks.
    """
    from repro.benchmarks_data.generator import random_sequential_circuit
    from repro.engine.packed import PackedSimulator
    from repro.sim.logicsim import CombinationalSimulator

    circuit = random_sequential_circuit(
        "s15850_scale", num_inputs=30, num_outputs=30, num_dffs=50,
        num_gates=int(params["num_gates"]), seed=1,
    ).circuit.combinational_view()
    rng = random.Random(0)
    vectors = [
        {net: rng.randint(0, 1) for net in circuit.inputs} for _ in range(BATCH)
    ]
    scalar = CombinationalSimulator(circuit)
    packed = PackedSimulator(circuit)

    # Results must agree before timing means anything.
    if packed.outputs_batch(vectors) != [scalar.outputs(v) for v in vectors]:
        raise RuntimeError(
            "packed engine disagrees with the scalar reference on the "
            "speedup workload — fix correctness before measuring")

    min_seconds = float(params["min_seconds"])
    scalar_vps = harness.sustained_rate(
        lambda: [scalar.outputs(vector) for vector in vectors],
        units=BATCH, min_seconds=min_seconds,
    )
    packed_vps = harness.sustained_rate(
        lambda: packed.outputs_batch(vectors),
        units=BATCH, min_seconds=min_seconds,
    )
    harness.time_series(
        "packed_batch", lambda: packed.outputs_batch(vectors),
        repeats=5, warmup=1,
    )
    return {
        "scalar_vps": scalar_vps,
        "packed_vps": packed_vps,
        "speedup": packed_vps / scalar_vps,
    }


@perf_benchmark(
    "engine.numpy_speedup",
    params=dict(num_gates=2000, lanes=8192, min_seconds=0.2),
    smoke=dict(lanes=WIDE_LANES, min_seconds=0.05),
    bars=[Bar("speedup", ">=", 4.0)],
    primary="numpy_pass",
)
def numpy_speedup(harness: Harness, params: Dict[str, object]) -> Dict[str, float]:
    """numpy uint64 kernel lanes/second over bigint tiling on wide passes
    (the >= 4x acceptance bar of the vectorized-backend PR).

    Word-level API on purpose: the metric isolates kernel execution (one
    fused array sweep per chunk versus lanes/128 sequential bigint tile
    passes) from the batch-boundary transpose, which ``engine.wide_batch``
    measures end to end.  Requires numpy; there is no degraded mode because
    a bigint-vs-bigint "speedup" of 1x would silently gut the bar.
    """
    from repro.engine.compiler import require_numpy
    from repro.engine.packed import PackedSimulator

    require_numpy("the engine.numpy_speedup benchmark")
    circuit = wide_circuit(int(params["num_gates"]))
    lanes = int(params["lanes"])
    rng = random.Random(0)
    input_words = {net: rng.getrandbits(lanes) for net in circuit.inputs}

    bigint = PackedSimulator(circuit, backend="bigint")
    vectorized = PackedSimulator(circuit, backend="numpy")

    # Results must agree before timing means anything.
    if vectorized.output_words(input_words, width=lanes) != bigint.output_words(
        input_words, width=lanes
    ):
        raise RuntimeError(
            "numpy backend disagrees with the bigint reference on the "
            "speedup workload — fix correctness before measuring")

    min_seconds = float(params["min_seconds"])
    bigint_lps = harness.sustained_rate(
        lambda: bigint.output_words(input_words, width=lanes),
        units=lanes, min_seconds=min_seconds,
    )
    numpy_lps = harness.sustained_rate(
        lambda: vectorized.output_words(input_words, width=lanes),
        units=lanes, min_seconds=min_seconds,
    )
    harness.time_series(
        "numpy_pass",
        lambda: vectorized.output_words(input_words, width=lanes),
        repeats=5, warmup=1,
    )
    return {
        "bigint_lps": bigint_lps,
        "numpy_lps": numpy_lps,
        "speedup": numpy_lps / bigint_lps,
    }


@perf_benchmark(
    "engine.wide_batch",
    params=dict(num_gates=2000, lanes=8192, min_seconds=0.2),
    smoke=dict(lanes=WIDE_LANES, min_seconds=0.05),
    bars=[Bar("speedup", ">=", 2.0, smoke_threshold=1.5)],
    primary="wide_batch",
)
def wide_batch(harness: Harness, params: Dict[str, object]) -> Dict[str, float]:
    """End-to-end wide oracle round trip — transpose vectors in, one packed
    pass, transpose outputs back out — new fast path versus the pre-PR
    reference loops.

    The fast path is the ``np.packbits``/``np.unpackbits`` batch-boundary
    swizzles feeding the auto-selected (numpy) backend; the reference is
    the retained bigint shift-or transpose feeding bigint tiling — i.e.
    exactly what every wide ``query_batch`` cost before this PR.  The bar
    is deliberately looser than ``engine.numpy_speedup``'s: per-lane dict
    handling is O(lanes) Python work on both sides and dilutes the kernel
    win.  Requires numpy (with it absent both sides run the same code and
    the bar would be meaningless).
    """
    from repro.engine.compiler import require_numpy
    from repro.engine.packed import (
        PackedSimulator,
        _pack_vectors_bigint,
        pack_vectors,
        unpack_vectors,
    )

    require_numpy("the engine.wide_batch benchmark")
    circuit = wide_circuit(int(params["num_gates"]))
    lanes = int(params["lanes"])
    outputs = circuit.outputs
    rng = random.Random(0)
    vectors = [
        {net: rng.randint(0, 1) for net in circuit.inputs} for _ in range(lanes)
    ]

    bigint = PackedSimulator(circuit, backend="bigint")
    auto = PackedSimulator(circuit, backend="auto")

    def fast_round_trip():
        words = auto.output_words(pack_vectors(vectors, circuit.inputs), width=lanes)
        return unpack_vectors(words, outputs, lanes)

    def reference_round_trip():
        words = bigint.output_words(
            _pack_vectors_bigint(vectors, circuit.inputs, None), width=lanes
        )
        return [
            {net: (words[net] >> lane) & 1 for net in outputs}
            for lane in range(lanes)
        ]

    # Results must agree before timing means anything.
    if fast_round_trip() != reference_round_trip():
        raise RuntimeError(
            "swizzled numpy round trip disagrees with the reference loops "
            "on the wide-batch workload — fix correctness before measuring")

    min_seconds = float(params["min_seconds"])
    reference_vps = harness.sustained_rate(
        reference_round_trip, units=lanes, min_seconds=min_seconds,
    )
    fast_vps = harness.sustained_rate(
        fast_round_trip, units=lanes, min_seconds=min_seconds,
    )
    harness.time_series("wide_batch", fast_round_trip, repeats=5, warmup=1)
    return {
        "reference_vps": reference_vps,
        "fast_vps": fast_vps,
        "speedup": fast_vps / reference_vps,
    }
