"""Experiments suite: end-to-end wall clock of the paper's regenerations.

No bars here — the tables' and figure's *results* are pinned by the pytest
suites (benchmarks/bench_table*.py, bench_figure4_overhead.py); what the
registry adds is one recorded timing series per experiment so
``repro perf compare`` catches a slow creep in the full
lock→encode→attack→report pipelines between commits.  Every bench still
re-asserts the paper's qualitative finding (as a raised error): timing a
run that produces the wrong table would poison the history.
"""

from __future__ import annotations

from typing import Dict

from repro.perf.harness import Harness
from repro.perf.registry import perf_benchmark


@perf_benchmark(
    "experiments.table1",
    params=dict(num_cycles=16),
    smoke=dict(num_cycles=8),
    primary="run",
)
def table1(harness: Harness, params: Dict[str, object]) -> Dict[str, float]:
    """Table I regeneration (Cute-Lock-Beh waveform validation)."""
    from repro.experiments.table1 import run_table1

    num_cycles = int(params["num_cycles"])

    def run() -> None:
        _, artefacts = run_table1(num_cycles=num_cycles)
        if not (artefacts["matches_correct"] and artefacts["diverges_wrong"]):
            raise RuntimeError("Table I regeneration lost the paper's result")

    stats = harness.time_series("run", run, repeats=3, warmup=1)
    return {"seconds": stats.median}


@perf_benchmark(
    "experiments.table2",
    params=dict(num_cycles=15),
    smoke=dict(num_cycles=8),
    primary="run",
)
def table2(harness: Harness, params: Dict[str, object]) -> Dict[str, float]:
    """Table II regeneration (Cute-Lock-Str validation on s27)."""
    from repro.experiments.table2 import run_table2

    num_cycles = int(params["num_cycles"])

    def run() -> None:
        _, artefacts = run_table2(num_cycles=num_cycles)
        if not (artefacts["matches_correct"] and artefacts["diverges_wrong"]):
            raise RuntimeError("Table II regeneration lost the paper's result")

    stats = harness.time_series("run", run, repeats=3, warmup=1)
    return {"seconds": stats.median}


@perf_benchmark(
    "experiments.table3",
    params=dict(time_limit=60.0),
    smoke=dict(time_limit=10.0),
    primary="run",
)
def table3(harness: Harness, params: Dict[str, object]) -> Dict[str, float]:
    """Table III quick regeneration (Cute-Lock-Beh vs BBO/INT/KC2)."""
    from repro.experiments.table3 import run_table3

    time_limit = float(params["time_limit"])

    def run() -> None:
        _, raw = run_table3(quick=True, time_limit=time_limit)
        if any(result.broke_defense
               for results in raw.values() for result in results):
            raise RuntimeError("an attack broke Cute-Lock-Beh in Table III")

    stats = harness.time_series("run", run, repeats=2, warmup=0)
    return {"seconds": stats.median}


@perf_benchmark(
    "experiments.table4",
    params=dict(time_limit=60.0),
    smoke=dict(time_limit=10.0),
    primary="run",
)
def table4(harness: Harness, params: Dict[str, object]) -> Dict[str, float]:
    """Table IV quick regeneration (Cute-Lock-Str vs BBO/INT/KC2/RANE)."""
    from repro.experiments.table4 import run_table4

    time_limit = float(params["time_limit"])

    def run() -> None:
        _, raw = run_table4(quick=True, time_limit=time_limit)
        if any(result.broke_defense
               for results in raw.values() for result in results):
            raise RuntimeError("an attack broke Cute-Lock-Str in Table IV")

    stats = harness.time_series("run", run, repeats=2, warmup=0)
    return {"seconds": stats.median}


@perf_benchmark("experiments.table5", primary="run")
def table5(harness: Harness, params: Dict[str, object]) -> Dict[str, float]:
    """Table V quick regeneration (DANA NMI + FALL on Cute-Lock-Str)."""
    from repro.experiments.table5 import run_table5

    def run() -> None:
        table, _ = run_table5(quick=True)
        if any(row["FALL keys"] != 0 for row in table.rows):
            raise RuntimeError("FALL recovered keys in Table V")
        unlocked = sum(row["NMI (unlocked)"] for row in table.rows)
        locked = sum(row["NMI (locked)"] for row in table.rows)
        if locked >= unlocked:
            raise RuntimeError("locking did not reduce the average DANA NMI")

    stats = harness.time_series("run", run, repeats=2, warmup=0)
    return {"seconds": stats.median}


@perf_benchmark("experiments.figure4", primary="run")
def figure4(harness: Harness, params: Dict[str, object]) -> Dict[str, float]:
    """Figure 4 quick regeneration (overhead panels vs DK-Lock)."""
    from repro.experiments.figure4 import run_figure4

    def run() -> None:
        tables, _ = run_figure4(quick=True)
        cells = tables["cell_count"]
        first_row, last_row = cells.rows[0], cells.rows[-1]

        def relative(row, column):
            return (row[column] - row["Original"]) / row["Original"]

        if relative(first_row, "Test Run 2") < relative(last_row, "Test Run 2"):
            raise RuntimeError("overhead no longer shrinks with circuit size")
        if first_row["Test Run 1"] > first_row["DK-Lock avg"]:
            raise RuntimeError("light Cute-Lock run no longer beats DK-Lock avg")

    stats = harness.time_series("run", run, repeats=2, warmup=0)
    return {"seconds": stats.median}
