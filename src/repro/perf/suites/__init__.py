"""Bundled benchmark suites: importing this package registers every bench.

Each submodule owns one suite (shared workload builders included) and the
``benchmarks/bench_*.py`` pytest scripts import their workloads from here —
the registry is the single source of truth for workload parameters, smoke
scaling and acceptance bars.
"""

from repro.perf.suites import (  # noqa: F401  (import = registration)
    ablation,
    attacks,
    campaign,
    engine,
    experiments,
    solver,
    substrate,
)

#: Suites in load order (documentation; the registry sorts alphabetically).
SUITE_MODULES = (
    "ablation",
    "attacks",
    "campaign",
    "engine",
    "experiments",
    "solver",
    "substrate",
)
