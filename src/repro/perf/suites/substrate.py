"""Substrate suite: one multi-series micro bench over the building blocks.

``benchmarks/bench_substrate_perf.py`` keeps its conventional
pytest-benchmark measurements (many rounds, statistical output); this
registry bench re-times the same six substrate operations as harness
series so they land in the perf history and participate in
``repro perf compare``.  The primary series is the Tseitin encode — the
substrate step every attack pipeline pays on every instance.
"""

from __future__ import annotations

import random
from typing import Dict

from repro.perf.harness import Harness
from repro.perf.registry import perf_benchmark


@perf_benchmark(
    "substrate.micro",
    params=dict(repeats=5),
    smoke=dict(repeats=3),
    primary="tseitin_encode",
)
def micro(harness: Harness, params: Dict[str, object]) -> Dict[str, float]:
    """Median seconds per substrate operation (solver, encoder, sims, lock)."""
    from repro.benchmarks_data.itc99 import load_itc99
    from repro.fsm.random_fsm import random_fsm
    from repro.fsm.synthesis import synthesize_fsm
    from repro.locking.cutelock_str import CuteLockStr
    from repro.sat.solver import Solver
    from repro.sat.tseitin import TseitinEncoder
    from repro.sim.logicsim import CombinationalSimulator
    from repro.sim.seqsim import SequentialSimulator

    repeats = int(params["repeats"])
    circuit = load_itc99("b14").circuit

    rng = random.Random(0)
    num_vars, num_clauses = 60, 250
    clauses = [
        [rng.choice([1, -1]) * rng.randint(1, num_vars) for _ in range(3)]
        for _ in range(num_clauses)
    ]

    def solve_3sat() -> None:
        solver = Solver()
        solver.add_clauses(clauses)
        if solver.solve() not in (True, False):
            raise RuntimeError("random 3-SAT solve did not terminate")

    def tseitin_encode() -> None:
        if not TseitinEncoder().encode(circuit).clauses:
            raise RuntimeError("Tseitin encode produced no clauses")

    seq_rng = random.Random(1)
    seq_vectors = [
        {net: seq_rng.randint(0, 1) for net in circuit.inputs} for _ in range(64)
    ]

    def sequential_sim() -> None:
        if len(SequentialSimulator(circuit).run(seq_vectors)) != 64:
            raise RuntimeError("sequential simulation dropped cycles")

    comb = circuit.combinational_view()
    comb_sim = CombinationalSimulator(comb)
    comb_rng = random.Random(2)
    comb_vector = {net: comb_rng.randint(0, 1) for net in comb.inputs}

    fsm = random_fsm(16, 3, 3, seed=4)
    transform = CuteLockStr(num_keys=8, key_width=4, num_locked_ffs=4, seed=5)

    series = {
        "sat_random_3sat": solve_3sat,
        "tseitin_encode": tseitin_encode,
        "sequential_sim": sequential_sim,
        "combinational_sim": lambda: comb_sim.outputs(comb_vector),
        "fsm_synthesis": lambda: synthesize_fsm(fsm, style="mux"),
        "cutelock_str_lock": lambda: transform.lock(circuit),
    }
    metrics: Dict[str, float] = {}
    for name, operation in series.items():
        stats = harness.time_series(name, operation, repeats=repeats, warmup=1)
        metrics[f"{name}_seconds"] = stats.median
    return metrics
