"""Solver suite: backend propagation ratios and trace-overhead bars.

The workload builders (layered BCP CNF, random 3-SAT corpus, pigeonhole)
and the four bars previously hard-coded in
``benchmarks/bench_solver_throughput.py`` live here as registry data:

* ``solver.bcp_ratio`` — cdcl-arena must sustain >= 1.5x the reference
  backend's propagation rate on a conflict-free BCP cascade (the DIP/DIS
  hot-loop shape);
* ``solver.search_ratio`` — >= 1.2x end-to-end on conflict-heavy search,
  with identical SAT/UNSAT answers;
* ``solver.trace_off_overhead`` — session + trace hooks with no active
  writer cost <= 5% of raw-solver BCP throughput;
* ``solver.trace_on_overhead`` — tracing at the default stride keeps
  >= 75% of search throughput, and the traces must parse.
"""

from __future__ import annotations

import random
import tempfile
from contextlib import nullcontext
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.perf.harness import Harness
from repro.perf.registry import Bar, perf_benchmark

#: Best-of repetitions for every rate measurement (shrugs off runner noise).
REPEATS = 3


# ------------------------------------------------------------------ workloads
def layered_circuit_cnf(
    num_inputs: int = 60, num_gates: int = 4000, seed: int = 9
) -> Tuple[List[List[int]], int]:
    """AND/OR/XOR Tseitin-style clauses over a layered random netlist."""
    rng = random.Random(seed)
    clauses: List[List[int]] = []
    nets = list(range(1, num_inputs + 1))
    next_var = num_inputs + 1
    for _ in range(num_gates):
        pool = nets[-200:] if len(nets) > 200 else nets
        a, b = rng.sample(pool, 2)
        out = next_var
        next_var += 1
        kind = rng.random()
        if kind < 0.4:  # AND
            clauses += [[-out, a], [-out, b], [out, -a, -b]]
        elif kind < 0.8:  # OR
            clauses += [[out, -a], [out, -b], [-out, a, b]]
        else:  # XOR
            clauses += [[-out, a, b], [-out, -a, -b], [out, -a, b], [out, a, -b]]
        nets.append(out)
    return clauses, num_inputs


def pigeonhole(holes: int, pigeons: int) -> List[List[int]]:
    """The classic UNSAT pigeonhole instance (hard for CDCL by design)."""
    clauses: List[List[int]] = []

    def var(p: int, h: int) -> int:
        return p * holes + h + 1

    for p in range(pigeons):
        clauses.append([var(p, h) for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                clauses.append([-var(p1, h), -var(p2, h)])
    return clauses


def search_instances(
    *, instances: int, num_vars: int, smoke: bool
) -> List[List[List[int]]]:
    """Random 3-SAT near the phase transition plus one pigeonhole instance."""
    rng = random.Random(123)
    corpus = []
    for _ in range(instances):
        clauses = [
            [rng.choice([1, -1]) * rng.randint(1, num_vars) for _ in range(3)]
            for _ in range(int(num_vars * 4.26))
        ]
        corpus.append(clauses)
    corpus.append(pigeonhole(6 if smoke else 7, 7 if smoke else 8))
    return corpus


def _assumption_sets(num_inputs: int, queries: int) -> List[List[int]]:
    rng = random.Random(1)
    return [
        [(v if rng.random() < 0.5 else -v) for v in range(1, num_inputs + 1)]
        for _ in range(queries)
    ]


# --------------------------------------------------------------------- rates
def bcp_rate(
    backend: str, *, num_gates: int, queries: int, repeats: int = REPEATS,
    samples_out: Optional[List[float]] = None,
) -> float:
    """Best sustained propagations/second on the BCP cascade (raw solver)."""
    from repro.sat.session import create_solver

    clauses, num_inputs = layered_circuit_cnf(num_gates=num_gates)
    assumption_sets = _assumption_sets(num_inputs, queries)
    best = 0.0
    for _ in range(repeats):
        solver = create_solver(backend)
        solver.add_clauses(clauses)
        solver.solve(assumptions=assumption_sets[0])  # warm-up
        before = solver.stats.propagations
        result, elapsed = Harness.timed(
            lambda: [solver.solve(assumptions=assumptions)
                     for assumptions in assumption_sets]
        )
        if not all(result):  # type: ignore[arg-type]
            raise RuntimeError(f"{backend}: BCP cascade query came back UNSAT")
        if samples_out is not None:
            samples_out.append(elapsed)
        best = max(best, (solver.stats.propagations - before) / elapsed)
    return best


def session_bcp_rate(
    backend: str, *, num_gates: int, queries: int, repeats: int = REPEATS,
    samples_out: Optional[List[float]] = None,
) -> float:
    """BCP-cascade propagation rate through the full SolveSession path.

    No tracer is active, so this is the tracing-OFF shape of the hot loop:
    hook attributes exist on the solver but every check is a ``None`` test.
    """
    from repro.sat.session import SolveSession

    clauses, num_inputs = layered_circuit_cnf(num_gates=num_gates)
    assumption_sets = _assumption_sets(num_inputs, queries)
    best = 0.0
    for _ in range(repeats):
        session = SolveSession(backend)
        session.solver.add_clauses(clauses)
        session.solve(assumptions=assumption_sets[0])  # warm-up
        before = session.solver.stats.propagations
        result, elapsed = Harness.timed(
            lambda: [session.solve(assumptions=assumptions)
                     for assumptions in assumption_sets]
        )
        if not all(result):  # type: ignore[arg-type]
            raise RuntimeError(f"{backend}: session BCP query came back UNSAT")
        if samples_out is not None:
            samples_out.append(elapsed)
        best = max(best, (session.solver.stats.propagations - before) / elapsed)
    return best


def search_rate(
    backend: str, *, instances: int, num_vars: int, conflicts: int, smoke: bool,
    answers_out: Optional[Dict[str, List[Optional[bool]]]] = None,
    samples_out: Optional[List[float]] = None,
    repeats: int = REPEATS,
) -> float:
    """Best propagations/second over the search corpus (raw solver)."""
    from repro.sat.session import create_solver

    corpus = search_instances(instances=instances, num_vars=num_vars, smoke=smoke)
    best = 0.0
    for repeat in range(repeats):
        propagations = 0
        answers: List[Optional[bool]] = []

        def sweep() -> None:
            nonlocal propagations
            for clauses in corpus:
                solver = create_solver(backend)
                solver.add_clauses(clauses)
                answers.append(solver.solve(conflict_limit=conflicts))
                propagations += solver.stats.propagations

        _, elapsed = Harness.timed(sweep)
        if samples_out is not None:
            samples_out.append(elapsed)
        best = max(best, propagations / elapsed)
        if repeat == 0 and answers_out is not None:
            answers_out[backend] = answers
    return best


def session_search_rate(
    backend: str, *, instances: int, num_vars: int, conflicts: int, smoke: bool,
    trace_dir: Optional[Path] = None, repeats: int = REPEATS,
) -> float:
    """Conflict-heavy search rate through SolveSession, optionally traced.

    With ``trace_dir`` set every repeat records a real trace at the default
    sampling stride — conflict events, restart events, solve markers — so
    this measures the full tracing-ON cost, serialisation included.
    """
    from repro.sat.session import SolveSession
    from repro.trace import trace_to

    corpus = search_instances(instances=instances, num_vars=num_vars, smoke=smoke)
    best = 0.0
    for repeat in range(repeats):
        tracing = (
            trace_to(trace_dir / f"search-{backend}-{repeat}.trace.jsonl")
            if trace_dir is not None
            else nullcontext()
        )
        propagations = 0

        def sweep() -> None:
            nonlocal propagations
            for clauses in corpus:
                session = SolveSession(backend)
                session.solver.add_clauses(clauses)
                session.solve(conflict_limit=conflicts)
                propagations += session.solver.stats.propagations

        with tracing:
            _, elapsed = Harness.timed(sweep)
        best = max(best, propagations / elapsed)
    return best


# ------------------------------------------------------------------- benches
@perf_benchmark(
    "solver.bcp_ratio",
    params=dict(num_gates=4000, queries=60),
    smoke=dict(num_gates=2000, queries=30),
    bars=[Bar("ratio", ">=", 1.5)],
    primary="arena_cascade",
)
def bcp_ratio(harness: Harness, params: Dict[str, object]) -> Dict[str, float]:
    """cdcl-arena over cdcl propagation rate on a conflict-free BCP cascade."""
    num_gates, queries = int(params["num_gates"]), int(params["queries"])
    arena_samples: List[float] = []
    cdcl = bcp_rate("cdcl", num_gates=num_gates, queries=queries)
    arena = bcp_rate("cdcl-arena", num_gates=num_gates, queries=queries,
                     samples_out=arena_samples)
    harness.record_series("arena_cascade", arena_samples)
    return {"cdcl_rate": cdcl, "arena_rate": arena, "ratio": arena / cdcl}


@perf_benchmark(
    "solver.search_ratio",
    params=dict(instances=6, num_vars=120, conflicts=20_000),
    smoke=dict(instances=3, num_vars=100, conflicts=12_000),
    bars=[Bar("ratio", ">=", 1.2)],
    primary="arena_search",
)
def search_ratio(harness: Harness, params: Dict[str, object]) -> Dict[str, float]:
    """cdcl-arena over cdcl end-to-end rate on conflict-heavy search.

    Definite answers (True/False) must be identical; a conflict-limited
    None may legitimately differ between backends, but not on this corpus
    with this budget — a disagreement is an error, not a measurement.
    """
    kwargs = dict(
        instances=int(params["instances"]), num_vars=int(params["num_vars"]),
        conflicts=int(params["conflicts"]), smoke=harness.smoke,
    )
    answers: Dict[str, List[Optional[bool]]] = {}
    arena_samples: List[float] = []
    cdcl = search_rate("cdcl", answers_out=answers, **kwargs)
    arena = search_rate("cdcl-arena", answers_out=answers,
                        samples_out=arena_samples, **kwargs)
    if answers["cdcl"] != answers["cdcl-arena"]:
        raise RuntimeError(
            "solver backends disagreed on the search corpus: "
            f"{answers['cdcl']} vs {answers['cdcl-arena']}")
    harness.record_series("arena_search", arena_samples)
    return {"cdcl_rate": cdcl, "arena_rate": arena, "ratio": arena / cdcl}


@perf_benchmark(
    "solver.trace_off_overhead",
    params=dict(num_gates=4000, queries=60),
    smoke=dict(num_gates=2000, queries=30),
    bars=[Bar("slowdown", "<=", 0.05)],
    primary="session_cascade",
)
def trace_off_overhead(harness: Harness, params: Dict[str, object]) -> Dict[str, float]:
    """Session + trace hooks with no active writer versus the raw solver.

    Measured as interleaved raw/session pairs; the gate is the *best* pair,
    because shared-runner noise (frequency scaling, neighbours) is
    one-sided and transient while a real hook-in-the-hot-loop regression
    slows every single pair.
    """
    num_gates, queries = int(params["num_gates"]), int(params["queries"])
    session_samples: List[float] = []
    pairs = []
    for _ in range(REPEATS):
        raw = bcp_rate("cdcl-arena", num_gates=num_gates, queries=queries,
                       repeats=1)
        session = session_bcp_rate("cdcl-arena", num_gates=num_gates,
                                   queries=queries, repeats=1,
                                   samples_out=session_samples)
        pairs.append((raw, session))
    raw, session = max(pairs, key=lambda pair: pair[1] / pair[0])
    harness.record_series("session_cascade", session_samples)
    return {
        "raw_rate": raw,
        "session_rate": session,
        "slowdown": max(0.0, 1.0 - session / raw),
    }


@perf_benchmark(
    "solver.trace_on_overhead",
    params=dict(instances=6, num_vars=120, conflicts=20_000),
    smoke=dict(instances=3, num_vars=100, conflicts=12_000),
    bars=[Bar("slowdown", "<=", 0.25)],
)
def trace_on_overhead(harness: Harness, params: Dict[str, object]) -> Dict[str, float]:
    """Tracing ON at the default stride versus untraced search throughput.

    The recorded traces must also be real: every file parses and carries
    sampled conflict events — an empty trace would make the bar
    meaningless.
    """
    from repro.trace import read_trace_events

    kwargs = dict(
        instances=int(params["instances"]), num_vars=int(params["num_vars"]),
        conflicts=int(params["conflicts"]), smoke=harness.smoke,
    )
    untraced = session_search_rate("cdcl-arena", **kwargs)
    with tempfile.TemporaryDirectory(prefix="repro-perf-trace-") as tmp:
        trace_dir = Path(tmp)
        traced = session_search_rate("cdcl-arena", trace_dir=trace_dir, **kwargs)
        files = sorted(trace_dir.glob("*.trace.jsonl"))
        if not files:
            raise RuntimeError("tracing-on run produced no trace files")
        for path in files:
            kinds = {event.get("kind") for event in read_trace_events(path)}
            if not {"meta", "solve-end", "conflict"} <= kinds:
                raise RuntimeError(f"trace {path} is missing solver events: {kinds}")
    return {
        "untraced_rate": untraced,
        "traced_rate": traced,
        "slowdown": max(0.0, 1.0 - traced / untraced),
    }
