"""Ablation suite: timing trajectory for the three ablation studies.

The ablation *findings* (counter-mode equivalence, DANA NMI monotonicity,
roughly linear MUX-tree overhead) stay asserted in the pytest scripts and
are re-raised here; the registry benches record how long each study takes,
because the ablations are the first thing an operator re-runs after
touching the locking transforms and a 10x slowdown there is a real
regression even when every result is still correct.
"""

from __future__ import annotations

from typing import Dict

from repro.perf.harness import Harness
from repro.perf.registry import perf_benchmark


@perf_benchmark(
    "ablation.counter_mode",
    params=dict(num_sequences=4, sequence_length=32),
    smoke=dict(num_sequences=2, sequence_length=16),
    primary="wrap",
)
def counter_mode(harness: Harness, params: Dict[str, object]) -> Dict[str, float]:
    """Lock + sequential-equivalence cost of wrap vs saturate counters."""
    from repro.benchmarks_data.itc99 import load_itc99
    from repro.locking.cutelock_str import CuteLockStr
    from repro.sim.equivalence import sequential_equivalence_check

    circuit = load_itc99("b03").circuit
    num_sequences = int(params["num_sequences"])
    sequence_length = int(params["sequence_length"])

    def study(saturate: bool) -> None:
        locked = CuteLockStr(num_keys=4, key_width=3, num_locked_ffs=2,
                             saturate_counter=saturate, seed=3).lock(circuit)
        schedule = list(locked.schedule.values)
        if saturate:
            # After the counter saturates the last scheduled key is held.
            schedule += [schedule[-1]] * 60
        verdict = sequential_equivalence_check(
            circuit, locked.circuit, key_schedule=schedule,
            key_inputs=locked.key_inputs, num_sequences=num_sequences,
            sequence_length=sequence_length,
        )
        if not verdict.equivalent:
            raise RuntimeError(
                f"{'saturate' if saturate else 'wrap'} counter broke "
                "functionality under the correct schedule")

    metrics: Dict[str, float] = {}
    for saturate, label in ((False, "wrap"), (True, "saturate")):
        stats = harness.time_series(
            label, lambda: study(saturate), repeats=3, warmup=1)
        metrics[f"{label}_seconds"] = stats.median
    return metrics


@perf_benchmark(
    "ablation.locked_ffs",
    params=dict(ff_counts=(1, 4, 8, 16)),
    smoke=dict(ff_counts=(1, 8)),
    primary="sweep",
)
def locked_ffs(harness: Harness, params: Dict[str, object]) -> Dict[str, float]:
    """DANA-NMI-vs-locked-FFs sweep cost (lock + dataflow attack per point)."""
    from repro.attacks.dana import dana_attack
    from repro.benchmarks_data.itc99 import load_itc99
    from repro.locking.cutelock_str import CuteLockStr

    generated = load_itc99("b10")
    ff_counts = tuple(int(count) for count in params["ff_counts"])  # type: ignore[union-attr]
    baseline = dana_attack(generated.circuit, generated.register_groups)

    def sweep() -> None:
        for num_locked_ffs in ff_counts:
            locked = CuteLockStr(
                num_keys=4, key_width=3, num_locked_ffs=num_locked_ffs,
                donors_per_ff=2, seed=2).lock(generated.circuit)
            report = dana_attack(locked, generated.register_groups)
            if report.nmi_score > baseline.nmi_score + 1e-9:
                raise RuntimeError(
                    f"locking {num_locked_ffs} FFs *raised* the DANA NMI")

    stats = harness.time_series("sweep", sweep, repeats=2, warmup=1)
    return {"sweep_seconds": stats.median, "points": float(len(ff_counts))}


@perf_benchmark(
    "ablation.muxtree",
    params=dict(key_widths=(1, 2, 4, 8), key_counts=(2, 4, 8, 16),
                activity_vectors=16),
    smoke=dict(key_widths=(1, 4), key_counts=(2, 8), activity_vectors=8),
    primary="sweep",
)
def muxtree(harness: Harness, params: Dict[str, object]) -> Dict[str, float]:
    """MUX-tree overhead sweep cost across key width and key count."""
    from repro.benchmarks_data.itc99 import load_itc99
    from repro.locking.cutelock_str import CuteLockStr
    from repro.synthesis.overhead import compare_overhead

    circuit = load_itc99("b03").circuit
    key_widths = tuple(int(width) for width in params["key_widths"])  # type: ignore[union-attr]
    key_counts = tuple(int(count) for count in params["key_counts"])  # type: ignore[union-attr]
    activity_vectors = int(params["activity_vectors"])

    def study(num_keys: int, key_width: int) -> None:
        transform = CuteLockStr(num_keys=num_keys, key_width=key_width,
                                num_locked_ffs=2, seed=1)
        report = compare_overhead(transform.lock(circuit),
                                  activity_vectors=activity_vectors)
        if report.cell_overhead_pct < 0:
            raise RuntimeError(
                f"negative cell overhead at k={num_keys} ki={key_width}")

    def sweep() -> None:
        for key_width in key_widths:
            study(4, key_width)
        for num_keys in key_counts:
            study(num_keys, 3)

    stats = harness.time_series("sweep", sweep, repeats=2, warmup=1)
    return {
        "sweep_seconds": stats.median,
        "points": float(len(key_widths) + len(key_counts)),
    }
