"""Campaign suite: result-store scaling and executor fan-out speedup.

Ports the hard-coded bars of ``benchmarks/bench_campaign_store.py`` and
``benchmarks/bench_campaign_throughput.py`` onto the registry:

* ``campaign.store_append`` — ``ResultStore.append`` must stay O(1) via
  the per-key attempt counter (>= 5000 records/s sustained);
* ``campaign.store_merge`` — ``merge_stores`` shard folding >= 2000
  records/s, and re-merging must be a byte-stable no-op;
* ``campaign.executor_speedup`` — the parallel executor >= 2x faster than
  serial on a grid of fixed-duration sleep cells;
* ``campaign.resume_skip`` — resume over a finished store must cost far
  less than re-running the grid.
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path
from typing import Dict

from repro.perf.harness import Harness
from repro.perf.registry import Bar, perf_benchmark


@perf_benchmark(
    "campaign.store_append",
    params=dict(appends=20_000, keys=2_000),
    smoke=dict(appends=5_000, keys=500),
    bars=[Bar("rate", ">=", 5_000.0)],
    primary="append_sweep",
)
def store_append(harness: Harness, params: Dict[str, object]) -> Dict[str, float]:
    """Sustained in-memory append rate over a many-key sweep.

    ``ResultStore.append`` once recomputed the attempt number by scanning
    every stored record — O(n^2) over a sweep.  The per-key counter keeps
    appends O(1); this bar fails if a rescan ever comes back.
    """
    from repro.campaign import ResultStore

    appends, keys = int(params["appends"]), int(params["keys"])
    samples = []
    rate = 0.0
    for _ in range(3):
        store = ResultStore(None)

        def sweep() -> None:
            for index in range(appends):
                store.append({
                    "key": f"job-{index % keys:05d}",
                    "status": "completed",
                    "payload": {"value": index},
                })

        _, elapsed = Harness.timed(sweep)
        samples.append(elapsed)
        rate = max(rate, appends / elapsed)
        if len(store) != appends:
            raise RuntimeError(f"store holds {len(store)} records, expected {appends}")
        if store.record_for("job-00000")["attempt"] != appends // keys:
            raise RuntimeError("per-key attempt counter drifted during the sweep")
    harness.record_series("append_sweep", samples)
    return {"rate": rate, "appends": float(appends)}


@perf_benchmark(
    "campaign.store_merge",
    params=dict(shards=4, records_per_shard=4_000),
    smoke=dict(records_per_shard=1_000),
    bars=[Bar("rate", ">=", 2_000.0)],
    primary="merge",
)
def store_merge(harness: Harness, params: Dict[str, object]) -> Dict[str, float]:
    """Shard-merge throughput, plus the byte-stable re-merge invariant."""
    from repro.campaign import ResultStore, merge_stores

    shards = int(params["shards"])
    records_per_shard = int(params["records_per_shard"])
    total = shards * records_per_shard
    with tempfile.TemporaryDirectory(prefix="repro-perf-store-") as tmp:
        root = Path(tmp) / "store"
        root.mkdir()
        # Write the shard files directly (append's per-record fsync is
        # deliberate durability work and would dominate the setup).
        for shard in range(shards):
            with (root / f"results-{shard + 1}of{shards}.jsonl").open("w") as handle:
                for index in range(records_per_shard):
                    handle.write(json.dumps({
                        "key": f"job-{shard}-{index:05d}",
                        "status": "completed",
                        "payload": {"value": index},
                        "finished_at": 1_000_000.0 + shard + index,
                        "attempt": 1,
                    }) + "\n")

        summary, elapsed = Harness.timed(lambda: merge_stores(root))
        harness.record_series("merge", [elapsed])
        if summary.records_out != total or len(ResultStore(root)) != total:
            raise RuntimeError(
                f"merge produced {summary.records_out} records, expected {total}")

        # Re-merging (canonical + all shards) must be a byte-stable no-op.
        before = (root / "results.jsonl").read_bytes()
        again = merge_stores(root)
        if (root / "results.jsonl").read_bytes() != before:
            raise RuntimeError("re-merge rewrote the canonical store")
        if again.duplicates != total:
            raise RuntimeError(
                f"re-merge saw {again.duplicates} duplicates, expected {total}")
    return {"rate": total / elapsed, "records": float(total)}


def _sleep_grid(jobs: int, seconds: float):
    from repro.campaign import CampaignSpec, JobSpec

    return CampaignSpec(
        name="bench-campaign",
        jobs=[
            JobSpec(kind="sleep", group="bench",
                    params={"seconds": seconds, "marker": index})
            for index in range(jobs)
        ],
    )


def _timed_run(jobs: int, seconds: float, *, workers: int, store=None) -> float:
    from repro.campaign import ResultStore, run_campaign

    store = store if store is not None else ResultStore(None)
    summary, elapsed = Harness.timed(
        lambda: run_campaign(_sleep_grid(jobs, seconds), store, workers=workers)
    )
    if summary.completed + summary.skipped != jobs:
        raise RuntimeError(f"campaign run did not cover the grid: {summary}")
    return elapsed


@perf_benchmark(
    "campaign.executor_speedup",
    params=dict(jobs=16, seconds=0.5, workers=4),
    smoke=dict(jobs=8, seconds=0.25),
    bars=[Bar("speedup", ">=", 2.0)],
    primary="parallel",
)
def executor_speedup(harness: Harness, params: Dict[str, object]) -> Dict[str, float]:
    """Parallel-over-serial wall clock on a grid of sleep cells.

    Sleep cells have *known* ideal wall-clock, so the ratio isolates the
    executor's fan-out, queueing and result-store overhead from the
    attacks' CPU contention; the ideal speedup equals the worker count
    even on 2-core runners because the cells block instead of compute.
    """
    jobs, seconds = int(params["jobs"]), float(params["seconds"])
    workers = int(params["workers"])
    serial = _timed_run(jobs, seconds, workers=0)
    parallel = _timed_run(jobs, seconds, workers=workers)
    harness.record_series("parallel", [parallel])
    return {
        "serial_seconds": serial,
        "parallel_seconds": parallel,
        "speedup": serial / parallel,
    }


@perf_benchmark(
    "campaign.resume_skip",
    params=dict(jobs=16, seconds=0.5, workers=4),
    smoke=dict(jobs=8, seconds=0.25),
    bars=[Bar("resume_fraction", "<=", 0.5)],
    primary="resume",
)
def resume_skip(harness: Harness, params: Dict[str, object]) -> Dict[str, float]:
    """Resume on a finished store must cost (almost) nothing.

    ``resume_fraction`` is resume wall-clock over the grid's serial sleep
    budget (``jobs * seconds``); the historical bar was "< half the budget".
    """
    from repro.campaign import ResultStore, run_campaign

    jobs, seconds = int(params["jobs"]), float(params["seconds"])
    workers = int(params["workers"])
    with tempfile.TemporaryDirectory(prefix="repro-perf-resume-") as tmp:
        store_dir = Path(tmp) / "store"
        run_campaign(_sleep_grid(jobs, seconds), ResultStore(store_dir),
                     workers=workers)
        summary, elapsed = Harness.timed(
            lambda: run_campaign(_sleep_grid(jobs, seconds),
                                 ResultStore(store_dir), workers=workers)
        )
    if summary.executed != 0 or summary.skipped != jobs:
        raise RuntimeError(f"resume re-executed cells: {summary}")
    harness.record_series("resume", [elapsed])
    return {
        "resume_seconds": elapsed,
        "resume_fraction": elapsed / (jobs * seconds),
    }
