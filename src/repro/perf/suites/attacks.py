"""Attacks suite: the batched sequential DIS loop plus attack-time trajectory.

The two gating benches port ``benchmarks/bench_sequential_attack_throughput.py``:
SARLock on the embedded ISCAS'89 ``s5378`` profile is the canonical
"one DIS per wrong key" scheme, so the DIS-refinement loop runs for exactly
the iteration cap on both engines and rounds/second compare identical work.
The packed-engine loop (lane-parallel ``query_batch``, amortized rebuilds)
must beat the scalar one-DIS-at-a-time path by the recorded bar.

``attacks.baseline_sat`` and ``attacks.sanity_singlekey`` carry no bars:
their correctness is pinned by the pytest suites; here they contribute
end-to-end attack wall-clock to the perf history so a slow creep in the
solver/engine stack shows up in ``repro perf compare`` even when every
ratio bar still passes.
"""

from __future__ import annotations

from typing import Dict

from repro.perf.harness import Harness
from repro.perf.registry import Bar, perf_benchmark

#: DIS-loop shape shared by both engines (matches the pytest benches).
DIS_BATCH = 16
DEPTH = 3


def locked_s5378(num_key_bits: int = 8, seed: int = 7):
    """SARLock on the embedded s5378 profile — the DIS-loop racetrack."""
    from repro.benchmarks_data.iscas89 import load_iscas89
    from repro.locking.baselines.sarlock import lock_sarlock

    return lock_sarlock(load_iscas89("s5378").circuit,
                        num_key_bits=num_key_bits, seed=seed)


def dis_loop_rate(locked, *, engine: str, incremental: bool, crunch_keys: bool,
                  max_iterations: int):
    """Run the capped DIS loop and return (result, rounds/s, elapsed)."""
    from repro.attacks.sequential_core import sequential_oracle_guided_attack

    result, elapsed = Harness.timed(
        lambda: sequential_oracle_guided_attack(
            locked,
            attack_name="bench",
            incremental=incremental,
            crunch_keys=crunch_keys,
            engine=engine,
            dis_batch=DIS_BATCH,
            initial_depth=DEPTH,
            max_depth=DEPTH,
            max_iterations=max_iterations,
            time_limit=600.0,
        )
    )
    return result, result.iterations / elapsed, elapsed


def _dis_loop_speedup(
    harness: Harness, params: Dict[str, object], *,
    incremental: bool, crunch_keys: bool,
) -> Dict[str, float]:
    max_iterations = int(params["max_iterations"])
    locked = locked_s5378()
    packed, packed_rate, packed_elapsed = dis_loop_rate(
        locked, engine="packed", incremental=incremental,
        crunch_keys=crunch_keys, max_iterations=max_iterations)
    scalar, scalar_rate, _ = dis_loop_rate(
        locked, engine="scalar", incremental=incremental,
        crunch_keys=crunch_keys, max_iterations=max_iterations)

    # Identical work and identical verdicts before the rates mean anything.
    if not (packed.iterations == scalar.iterations == max_iterations):
        raise RuntimeError(
            f"engines ran different DIS-round counts: packed "
            f"{packed.iterations}, scalar {scalar.iterations}, "
            f"cap {max_iterations}")
    if packed.outcome != scalar.outcome:
        raise RuntimeError(
            f"engines disagree on the attack outcome: "
            f"{packed.outcome} vs {scalar.outcome}")
    if packed.details["oracle_queries"] != scalar.details["oracle_queries"]:
        raise RuntimeError("engines spent different oracle-query budgets")

    harness.record_series("packed_loop", [packed_elapsed])
    return {
        "packed_rate": packed_rate,
        "scalar_rate": scalar_rate,
        "speedup": packed_rate / scalar_rate,
    }


@perf_benchmark(
    "attacks.dis_loop_bmc",
    params=dict(max_iterations=48),
    smoke=dict(max_iterations=16),
    bars=[Bar("speedup", ">=", 3.0, smoke_threshold=2.0)],
    primary="packed_loop",
)
def dis_loop_bmc(harness: Harness, params: Dict[str, object]) -> Dict[str, float]:
    """Non-incremental ("BBO") DIS loop: batching also amortizes the rebuild.

    Smoke runs fewer rounds, so the harvest quota ramp (1, 2, 4, ...) has
    less time at full width and the bar is relaxed to 2x.
    """
    return _dis_loop_speedup(harness, params, incremental=False, crunch_keys=False)


@perf_benchmark(
    "attacks.dis_loop_kc2",
    params=dict(max_iterations=48),
    smoke=dict(max_iterations=16),
    bars=[Bar("speedup", ">=", 3.0, smoke_threshold=2.0)],
    primary="packed_loop",
)
def dis_loop_kc2(harness: Harness, params: Dict[str, object]) -> Dict[str, float]:
    """Incremental + key-condition crunching: crunch runs once per batch."""
    return _dis_loop_speedup(harness, params, incremental=True, crunch_keys=True)


@perf_benchmark(
    "attacks.baseline_sat",
    params=dict(key_bits=6, time_limit=60.0),
    smoke=dict(time_limit=10.0),
    primary="sat_attack",
)
def baseline_sat(harness: Harness, params: Dict[str, object]) -> Dict[str, float]:
    """End-to-end SAT attack on RLL (experiment E8's first row), timed.

    No bar — the attack must simply *succeed*; the recorded wall-clock is
    trajectory data for ``repro perf compare``.
    """
    from repro.attacks import sat_attack
    from repro.attacks.results import AttackOutcome
    from repro.fsm.random_fsm import random_fsm
    from repro.fsm.synthesis import synthesize_fsm
    from repro.locking.baselines import lock_rll

    circuit = synthesize_fsm(random_fsm(8, 2, 2, seed=5), style="sop")
    locked = lock_rll(circuit, int(params["key_bits"]), seed=1)
    time_limit = float(params["time_limit"])
    stats = harness.time_series(
        "sat_attack",
        lambda: _require_correct(sat_attack(locked, time_limit=time_limit),
                                 AttackOutcome.CORRECT, "RLL SAT attack"),
        repeats=3, warmup=1,
    )
    return {"attack_seconds": stats.median}


@perf_benchmark(
    "attacks.sanity_singlekey",
    params=dict(time_limit=60.0, max_depth=8),
    smoke=dict(time_limit=10.0),
    primary="int_attack",
)
def sanity_singlekey(harness: Harness, params: Dict[str, object]) -> Dict[str, float]:
    """Experiment E7 timing: the single-key Cute-Lock reduction, attacked.

    No bar; trajectory only.  The incremental unrolling attack is the
    timed path because it exercises the unroller, session layer and packed
    oracle in one go.
    """
    from repro.attacks import int_attack
    from repro.attacks.results import AttackOutcome
    from repro.fsm.random_fsm import random_fsm
    from repro.fsm.synthesis import synthesize_fsm
    from repro.locking.base import KeySchedule
    from repro.locking.cutelock_str import CuteLockStr

    circuit = synthesize_fsm(random_fsm(8, 2, 2, seed=5), style="sop")
    schedule = KeySchedule(width=2, values=(2, 2, 2, 2))
    locked = CuteLockStr(num_keys=4, key_width=2, num_locked_ffs=1, seed=3).lock(
        circuit, schedule=schedule)
    time_limit, max_depth = float(params["time_limit"]), int(params["max_depth"])
    stats = harness.time_series(
        "int_attack",
        lambda: _require_correct(
            int_attack(locked, time_limit=time_limit, max_depth=max_depth),
            AttackOutcome.CORRECT, "single-key INT attack"),
        repeats=3, warmup=1,
    )
    return {"attack_seconds": stats.median}


def _require_correct(result, expected, label: str):
    if result.outcome is not expected:
        raise RuntimeError(f"{label} did not recover the key: {result.outcome}")
    return result
