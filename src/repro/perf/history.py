"""Append-only JSONL perf-history store and the ``BENCH_<suite>.json`` snapshots.

One :class:`PerfHistory` owns one ``perf-history.jsonl`` file: one JSON
record per benchmark execution, appended with the same flush+fsync
durability as the campaign result store and read back through
:func:`repro.jsonutil.read_jsonl_objects` — so a torn final line from a
killed run is tolerated silently, mid-file corruption warns with file:line,
and records never vanish without a trace.  The record schema is versioned
(``PERF_SCHEMA_VERSION``) and documented in ``PERF_FORMAT.md``.

Indexing follows the trajectory questions the store exists to answer:
*latest record per bench* (what does this machine currently measure?) and
*latest per (bench, sha)* (how did commit X measure?), which is what
``repro perf compare --history`` resolves shas against.

:func:`write_snapshots` condenses the latest records into one
``BENCH_<suite>.json`` per suite at the repo root — a small, committable
marker of the perf trajectory that survives even when the full history file
stays machine-local.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.jsonutil import jsonable, read_jsonl_objects

#: Bump when the history-record fields change incompatibly; readers skip
#: newer-schema records with a warning instead of misreading them.
PERF_SCHEMA_VERSION = 1

#: Default history file name (one per machine/checkout, append-only).
PERF_HISTORY_NAME = "perf-history.jsonl"

#: Snapshot files are ``BENCH_<SUITE>.json`` at the chosen root.
SNAPSHOT_PREFIX = "BENCH_"

Record = Dict[str, object]


class PerfHistory:
    """Append-only JSONL store of benchmark run records."""

    def __init__(self, path: Union[str, Path] = PERF_HISTORY_NAME) -> None:
        self.path = Path(path)

    # -------------------------------------------------------------- writing
    def append(self, record: Mapping[str, object]) -> Record:
        """Append one run record, stamping schema version and wall time.

        ``recorded_at`` is deliberately real wall clock (not monotonic): it
        is provenance for humans reading the trajectory and orders records
        across process restarts, never a measurement.
        """
        payload: Record = dict(jsonable(record))  # type: ignore[arg-type]
        payload.setdefault("schema", PERF_SCHEMA_VERSION)
        payload.setdefault("recorded_at", time.time())
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(payload, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        return payload

    # -------------------------------------------------------------- reading
    def records(self) -> List[Record]:
        """Every readable record, oldest first (tolerating tears/corruption)."""
        if not self.path.exists():
            return []
        rows = read_jsonl_objects(
            self.path, label="perf record", file_label="perf history"
        )
        records: List[Record] = []
        for row in rows:
            schema = row.get("schema")
            if isinstance(schema, (int, float)) and schema > PERF_SCHEMA_VERSION:
                warnings.warn(
                    f"{self.path}: skipping perf record with schema {schema} "
                    f"(this reader understands <= {PERF_SCHEMA_VERSION})",
                    RuntimeWarning,
                    stacklevel=2,
                )
                continue
            if isinstance(row.get("bench"), str):
                records.append(row)
        return records

    @staticmethod
    def _sha(record: Mapping[str, object]) -> Optional[str]:
        env = record.get("env")
        if isinstance(env, Mapping):
            sha = env.get("git_sha")
            return sha if isinstance(sha, str) else None
        return None

    def latest(self, *, smoke: Optional[bool] = None) -> Dict[str, Record]:
        """Latest record per bench (optionally restricted to one mode).

        File order is append order, so "latest" is simply the last match —
        no wall-clock comparison is needed.
        """
        index: Dict[str, Record] = {}
        for record in self.records():
            if smoke is not None and bool(record.get("smoke")) is not smoke:
                continue
            index[str(record["bench"])] = record
        return index

    def latest_by_sha(
        self, *, smoke: Optional[bool] = None
    ) -> Dict[Tuple[str, Optional[str]], Record]:
        """Latest record per ``(bench, git_sha)`` — the trajectory index."""
        index: Dict[Tuple[str, Optional[str]], Record] = {}
        for record in self.records():
            if smoke is not None and bool(record.get("smoke")) is not smoke:
                continue
            index[(str(record["bench"]), self._sha(record))] = record
        return index

    def shas(self) -> List[str]:
        """Distinct git shas in first-appearance (append) order."""
        seen: List[str] = []
        for record in self.records():
            sha = self._sha(record)
            if sha is not None and sha not in seen:
                seen.append(sha)
        return seen

    def for_sha(
        self, sha: str, *, smoke: Optional[bool] = None
    ) -> Dict[str, Record]:
        """Latest record per bench among records of one commit.

        ``sha`` may be a unique prefix (7+ chars work like git's own
        abbreviations); an ambiguous prefix raises ``ValueError``.
        """
        matches = [
            full for full in self.shas()
            if full == sha or full.startswith(sha)
        ]
        if not matches:
            raise ValueError(
                f"no perf records for sha {sha!r} in {self.path} "
                f"(known: {', '.join(full[:12] for full in self.shas()) or 'none'})"
            )
        if len(matches) > 1:
            raise ValueError(
                f"sha prefix {sha!r} is ambiguous in {self.path}: "
                + ", ".join(full[:12] for full in matches)
            )
        full = matches[0]
        index: Dict[str, Record] = {}
        for record in self.records():
            if self._sha(record) != full:
                continue
            if smoke is not None and bool(record.get("smoke")) is not smoke:
                continue
            index[str(record["bench"])] = record
        return index


# ------------------------------------------------------------------ snapshots
def snapshot_payload(
    latest: Mapping[str, Record], suite: str
) -> Dict[str, object]:
    """Condense one suite's latest records into its snapshot document."""
    benches: Dict[str, object] = {}
    for name in sorted(latest):
        record = latest[name]
        if record.get("suite") != suite:
            continue
        env = record.get("env")
        benches[name] = {
            "metrics": record.get("metrics", {}),
            "bars": record.get("bars", []),
            "ok": record.get("ok"),
            "smoke": record.get("smoke"),
            "elapsed_seconds": record.get("elapsed_seconds"),
            "recorded_at": record.get("recorded_at"),
            "git_sha": env.get("git_sha") if isinstance(env, Mapping) else None,
        }
    return {
        "schema": PERF_SCHEMA_VERSION,
        "suite": suite,
        "benches": benches,
    }


def write_snapshots(
    history: Union[PerfHistory, Mapping[str, Record]],
    root: Union[str, Path] = ".",
    *,
    suites: Sequence[str] = (),
) -> List[Path]:
    """Write one ``BENCH_<SUITE>.json`` per suite with recorded data.

    ``history`` is a :class:`PerfHistory` (its unrestricted latest index is
    used) or an already-built ``{bench: record}`` mapping.  Only suites that
    actually have records get a file; passing ``suites`` restricts further.
    Output is deterministic (sorted keys, stable indent) so re-running a
    sweep with unchanged results rewrites byte-identical snapshots.
    """
    latest = history.latest() if isinstance(history, PerfHistory) else dict(history)
    root = Path(root)
    recorded_suites = sorted(
        {
            str(record.get("suite"))
            for record in latest.values()
            if isinstance(record.get("suite"), str)
        }
    )
    wanted = [
        suite for suite in recorded_suites if not suites or suite in suites
    ]
    written: List[Path] = []
    for suite in wanted:
        payload = snapshot_payload(latest, suite)
        if not payload["benches"]:
            continue
        path = root / f"{SNAPSHOT_PREFIX}{suite.upper()}.json"
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        written.append(path)
    return written
