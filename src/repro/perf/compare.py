"""Noise-aware regression detection between two sets of history records.

The comparator answers the only question that matters between two commits:
*did anything get slower beyond measurement noise?*  Each bench's primary
timing series (median + interquartile range over its repeats) is compared
with two tolerance tests, and a bench is only called **regressed** (or
**improved**) when both say the change is real:

* **relative threshold** — the medians must differ by more than
  ``threshold`` (default 10%), so micro-jitter on sub-millisecond series
  never fires;
* **IQR overlap** — the two runs' interquartile ranges must be disjoint;
  overlapping noise bands mean the distributions are indistinguishable,
  however far apart the medians drifted on this particular run.

Everything else is **noisy** (present on both sides, no real change) or
**missing** (recorded in the baseline but absent from the candidate — a
bench that silently stopped running is itself a finding).  Candidate-only
benches report as **new**.

``repro perf gate`` lives here too: it re-evaluates the *registry's*
declared bars (not the bars stored when the record was written) against
recorded metrics, so tightening a bar in the registry immediately re-gates
old measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.perf.harness import SeriesStats
from repro.perf.registry import (
    BarResult,
    PerfBenchmark,
    evaluate_bars,
    select_benchmarks,
)
from repro.trace.analysis import ascii_bar

Record = Mapping[str, object]

#: Verdicts, in render/severity order.
REGRESSED = "regressed"
IMPROVED = "improved"
NOISY = "noisy"
MISSING = "missing"
NEW = "new"
VERDICTS = (REGRESSED, IMPROVED, NOISY, MISSING, NEW)

#: Default relative-change threshold below which drift is always noise.
DEFAULT_THRESHOLD = 0.10


def primary_stats(record: Record) -> Optional[SeriesStats]:
    """The series regression detection keys on, from one history record.

    Falls back to a zero-width distribution around ``elapsed_seconds`` when
    the record carries no usable primary series, so single-shot benches
    still compare (on the relative threshold alone).
    """
    series = record.get("series")
    primary = record.get("primary")
    if isinstance(series, Mapping) and isinstance(primary, str):
        stats = series.get(primary)
        if isinstance(stats, Mapping):
            return SeriesStats.from_dict(stats)
    elapsed = record.get("elapsed_seconds")
    if isinstance(elapsed, (int, float)):
        value = float(elapsed)
        return SeriesStats(repeats=1, seconds_min=value, q1=value,
                           median=value, q3=value)
    return None


@dataclass(frozen=True)
class CompareRow:  # repro-lint: disable=R005 (one-way CLI/CI payload, never read back)
    """One bench's verdict between baseline and candidate."""

    bench: str
    verdict: str
    baseline_median: Optional[float]
    candidate_median: Optional[float]
    relative_change: Optional[float]
    iqr_overlap: Optional[bool]

    def to_dict(self) -> Dict[str, object]:
        return {
            "bench": self.bench,
            "verdict": self.verdict,
            "baseline_median": self.baseline_median,
            "candidate_median": self.candidate_median,
            "relative_change": self.relative_change,
            "iqr_overlap": self.iqr_overlap,
        }


def _verdict(
    base: SeriesStats, cand: SeriesStats, *, threshold: float
) -> Tuple[str, float, bool]:
    """(verdict, relative change, IQR overlap) for one bench pair."""
    overlap = cand.q1 <= base.q3 and base.q1 <= cand.q3
    if base.median <= 0.0:
        # Degenerate baseline timing: a zero-median series cannot scale a
        # relative change, so only a clearly non-zero candidate outside the
        # overlap band reads as a change at all.
        if cand.median <= 0.0 or overlap:
            return NOISY, 0.0, overlap
        return REGRESSED, float("inf"), overlap
    relative = (cand.median - base.median) / base.median
    if abs(relative) <= threshold or overlap:
        return NOISY, relative, overlap
    return (REGRESSED if relative > 0 else IMPROVED), relative, overlap


def compare_records(
    baseline: Mapping[str, Record],
    candidate: Mapping[str, Record],
    *,
    threshold: float = DEFAULT_THRESHOLD,
) -> Dict[str, object]:
    """Compare two ``{bench: record}`` maps (latest-per-bench indexes)."""
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold}")
    rows: List[CompareRow] = []
    for bench in sorted(set(baseline) | set(candidate)):
        base_record = baseline.get(bench)
        cand_record = candidate.get(bench)
        if base_record is None or cand_record is None:
            base_stats = primary_stats(base_record) if base_record else None
            cand_stats = primary_stats(cand_record) if cand_record else None
            rows.append(
                CompareRow(
                    bench=bench,
                    verdict=MISSING if cand_record is None else NEW,
                    baseline_median=base_stats.median if base_stats else None,
                    candidate_median=cand_stats.median if cand_stats else None,
                    relative_change=None,
                    iqr_overlap=None,
                )
            )
            continue
        base_stats = primary_stats(base_record)
        cand_stats = primary_stats(cand_record)
        if base_stats is None or cand_stats is None:
            rows.append(
                CompareRow(
                    bench=bench,
                    verdict=NOISY,
                    baseline_median=base_stats.median if base_stats else None,
                    candidate_median=cand_stats.median if cand_stats else None,
                    relative_change=None,
                    iqr_overlap=None,
                )
            )
            continue
        verdict, relative, overlap = _verdict(
            base_stats, cand_stats, threshold=threshold
        )
        rows.append(
            CompareRow(
                bench=bench,
                verdict=verdict,
                baseline_median=base_stats.median,
                candidate_median=cand_stats.median,
                relative_change=relative,
                iqr_overlap=overlap,
            )
        )
    counts = {verdict: 0 for verdict in VERDICTS}
    for row in rows:
        counts[row.verdict] += 1
    return {
        "threshold": threshold,
        "rows": [row.to_dict() for row in rows],
        "counts": counts,
        "ok": counts[REGRESSED] == 0 and counts[MISSING] == 0,
    }


def render_compare(comparison: Mapping[str, object], *, width: int = 16) -> str:
    """Ascii comparison table in the house style of ``trace/analysis.py``."""
    rows: Sequence[Mapping[str, object]] = comparison["rows"]  # type: ignore[assignment]
    counts: Mapping[str, int] = comparison["counts"]  # type: ignore[assignment]
    threshold = float(comparison.get("threshold", DEFAULT_THRESHOLD))  # type: ignore[arg-type]
    lines = [f"threshold: {threshold:.0%} relative change, IQR-overlap tolerated"]
    if not rows:
        lines.append("(no benches on either side)")
        return "\n".join(lines)
    name_width = max(len("bench"), max(len(str(row["bench"])) for row in rows))
    lines.append(
        f"{'bench':<{name_width}}  {'base ms':>10}  {'cand ms':>10}  "
        f"{'change':>8}  {'verdict':>9}  bar"
    )

    def _ms(value: object) -> str:
        return f"{float(value) * 1e3:,.3f}" if isinstance(value, (int, float)) else "-"

    def _change(value: object) -> str:
        if not isinstance(value, (int, float)):
            return "-"
        if value == float("inf"):
            return "+inf"
        return f"{value:+.1%}"

    for row in rows:
        relative = row.get("relative_change")
        magnitude = (
            min(1.0, abs(float(relative))) if isinstance(relative, (int, float))
            and relative != float("inf") else 0.0
        )
        lines.append(
            f"{str(row['bench']):<{name_width}}  {_ms(row['baseline_median']):>10}  "
            f"{_ms(row['candidate_median']):>10}  {_change(relative):>8}  "
            f"{str(row['verdict']):>9}  {ascii_bar(magnitude, width)}"
        )
    lines.append(
        "verdicts: "
        + " ".join(f"{verdict}={counts.get(verdict, 0)}" for verdict in VERDICTS)
    )
    lines.append("result: " + ("clean" if comparison.get("ok") else "REGRESSION"))
    return "\n".join(lines)


# ----------------------------------------------------------------------- gate
@dataclass(frozen=True)
class GateEntry:  # repro-lint: disable=R005 (one-way CLI/CI payload, never read back)
    """One bench's gate outcome: recorded metrics vs the registry's bars."""

    bench: str
    status: str  # "pass" | "fail" | "missing"
    bar_results: Tuple[BarResult, ...]

    def to_dict(self) -> Dict[str, object]:
        return {
            "bench": self.bench,
            "status": self.status,
            "bars": [result.to_dict() for result in self.bar_results],
        }


def evaluate_gate(
    latest: Mapping[str, Record],
    *,
    smoke: bool = False,
    benchmarks: Optional[Sequence[PerfBenchmark]] = None,
) -> Dict[str, object]:
    """Check every bar-bearing registered bench against recorded metrics.

    ``latest`` is a ``{bench: record}`` index (typically
    ``PerfHistory.latest(smoke=...)``).  A bar-bearing bench with no record
    gates as ``missing`` — a bench that silently stopped running must fail
    the gate, not pass it by absence.  Benches without bars are recorded
    trajectory only and never gate.
    """
    selected = list(benchmarks) if benchmarks is not None else select_benchmarks()
    entries: List[GateEntry] = []
    for bench in selected:
        if not bench.bars:
            continue
        record = latest.get(bench.name)
        if record is None:
            entries.append(GateEntry(bench=bench.name, status="missing",
                                     bar_results=()))
            continue
        metrics = record.get("metrics")
        metrics = metrics if isinstance(metrics, Mapping) else {}
        results = evaluate_bars(bench.bars, metrics, smoke=smoke)
        status = "pass" if all(result.passed for result in results) else "fail"
        entries.append(GateEntry(bench=bench.name, status=status,
                                 bar_results=tuple(results)))
    failed = [entry for entry in entries if entry.status != "pass"]
    return {
        "smoke": smoke,
        "entries": [entry.to_dict() for entry in entries],
        "gated": len(entries),
        "failed": len(failed),
        "ok": not failed,
    }


def render_gate(gate: Mapping[str, object]) -> str:
    """Human-readable gate report: one line per bar, grouped by bench."""
    entries: Sequence[Mapping[str, object]] = gate["entries"]  # type: ignore[assignment]
    mode = "smoke" if gate.get("smoke") else "full"
    lines = [f"perf gate ({mode} bars): {gate.get('gated', 0)} bench(es)"]
    if not entries:
        lines.append("(no bar-bearing benches selected)")
    for entry in entries:
        status = str(entry["status"]).upper()
        lines.append(f"  {entry['bench']}: {status}")
        for bar in entry.get("bars", ()):  # type: ignore[union-attr]
            shown = (
                f"{bar['value']:g}" if isinstance(bar.get("value"), (int, float))
                else "missing"
            )
            verdict = "PASS" if bar.get("passed") else "FAIL"
            lines.append(
                f"    {bar['metric']} {bar['op']} {float(bar['limit']):g} : "
                f"{shown}  {verdict}"
            )
        if entry["status"] == "missing":
            lines.append("    (no recorded run for this mode; run "
                         "`repro perf run` first)")
    lines.append(
        "result: "
        + ("clean" if gate.get("ok") else f"{gate.get('failed')} gating failure(s)")
    )
    return "\n".join(lines)
