"""Shared measurement core for registered performance benchmarks.

Every registered benchmark (see :mod:`repro.perf.registry`) measures through
one :class:`Harness`, so the warmup/repeat/statistics discipline — and the
copy-pasted ``while elapsed < min_seconds`` loops the old ``benchmarks/``
scripts each hand-rolled — lives in exactly one place.  All timing uses
``time.perf_counter`` (monotonic): wall clocks never enter a measurement,
which is what keeps this module clean under ``repro check lint`` R001.

The harness records named **series** — lists of per-repeat elapsed seconds
summarised as min/quartiles/IQR — alongside whatever scalar metrics the
workload derives (rates, ratios, slowdowns).  Series are what the
noise-aware comparator (:mod:`repro.perf.compare`) consumes; metrics are
what acceptance bars (:class:`repro.perf.registry.Bar`) are checked
against.

:func:`environment_fingerprint` stamps each run with the context needed to
interpret it later: git sha, python version, platform, CPU count and the
``REPRO_*`` switches that change what the benchmarks measure.
"""

from __future__ import annotations

import os
import platform
import subprocess
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence

#: Environment switches that change what a benchmark measures; recorded in
#: every fingerprint so history records from different configurations are
#: never silently compared as equals.
_FINGERPRINT_FLAGS = (
    "REPRO_BENCH_SMOKE",
    "REPRO_CHECK_KERNELS",
    "REPRO_CHECK_SOLVER",
)


@dataclass(frozen=True)
class SeriesStats:
    """Order statistics over one series of per-repeat elapsed seconds."""

    repeats: int
    seconds_min: float
    q1: float
    median: float
    q3: float

    @property
    def iqr(self) -> float:
        """Interquartile range — the noise band compare verdicts honour."""
        return self.q3 - self.q1

    def to_dict(self) -> Dict[str, object]:
        return {
            "repeats": self.repeats,
            "min": self.seconds_min,
            "q1": self.q1,
            "median": self.median,
            "q3": self.q3,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "SeriesStats":
        return cls(
            repeats=int(payload.get("repeats", 1)),  # type: ignore[arg-type]
            seconds_min=float(payload.get("min", 0.0)),  # type: ignore[arg-type]
            q1=float(payload.get("q1", 0.0)),  # type: ignore[arg-type]
            median=float(payload.get("median", 0.0)),  # type: ignore[arg-type]
            q3=float(payload.get("q3", 0.0)),  # type: ignore[arg-type]
        )


def quantile(samples: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile of an unsorted, non-empty sample list."""
    if not samples:
        raise ValueError("quantile of an empty sample list")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile fraction must be in [0, 1], got {q}")
    ordered = sorted(samples)
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def series_stats(samples: Sequence[float]) -> SeriesStats:
    """Summarise per-repeat seconds into :class:`SeriesStats`."""
    return SeriesStats(
        repeats=len(samples),
        seconds_min=min(samples),
        q1=quantile(samples, 0.25),
        median=quantile(samples, 0.5),
        q3=quantile(samples, 0.75),
    )


class Harness:
    """Measurement context handed to every registered workload function.

    One harness instance accumulates the named series a workload records;
    :func:`repro.perf.registry.run_registered` folds them into the run
    result.  ``smoke`` mirrors the run mode so workloads can branch on it
    without re-reading the environment.
    """

    def __init__(self, *, smoke: bool = False) -> None:
        self.smoke = bool(smoke)
        self.series: Dict[str, SeriesStats] = {}

    # ------------------------------------------------------------- recording
    def record_series(self, name: str, samples: Sequence[float]) -> SeriesStats:
        """Store raw per-repeat seconds under ``name`` and return the stats."""
        if not samples:
            raise ValueError(f"series {name!r} has no samples")
        stats = series_stats([float(sample) for sample in samples])
        self.series[name] = stats
        return stats

    def time_series(
        self,
        name: str,
        fn: Callable[[], object],
        *,
        repeats: int = 5,
        warmup: int = 1,
    ) -> SeriesStats:
        """Time ``fn`` ``repeats`` times (after ``warmup`` unrecorded calls)."""
        if repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {repeats}")
        for _ in range(warmup):
            fn()
        samples: List[float] = []
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            samples.append(time.perf_counter() - start)
        return self.record_series(name, samples)

    # --------------------------------------------------------------- timing
    @staticmethod
    def timed(fn: Callable[[], object]) -> "tuple[object, float]":
        """Run ``fn`` once, returning ``(result, elapsed_seconds)``."""
        start = time.perf_counter()
        result = fn()
        return result, time.perf_counter() - start

    @staticmethod
    def sustained_rate(
        fn: Callable[[], object],
        *,
        units: float,
        repeats: int = 3,
        min_seconds: float = 0.05,
    ) -> float:
        """Best-of-``repeats`` sustained rate of ``fn`` in ``units`` per call.

        Each repeat loops ``fn`` until at least ``min_seconds`` of measured
        time has accumulated, then computes ``units * rounds / elapsed``;
        the best repeat wins, shrugging off one-sided scheduler noise the
        same way the old per-script best-of loops did.
        """
        best = 0.0
        for _ in range(max(1, repeats)):
            rounds, elapsed = 0, 0.0
            while elapsed < min_seconds:
                start = time.perf_counter()
                fn()
                elapsed += time.perf_counter() - start
                rounds += 1
            best = max(best, units * rounds / elapsed)
        return best


def git_revision(cwd: Optional[str] = None) -> Optional[str]:
    """The current git commit sha, or None outside a repo / without git."""
    try:
        probe = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10.0,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = probe.stdout.strip()
    return sha if probe.returncode == 0 and sha else None


def environment_fingerprint(cwd: Optional[str] = None) -> Dict[str, object]:
    """Context stamped onto every history record.

    Stable within a process and environment: two calls in the same process
    return equal fingerprints, which is what makes ``(bench, sha)`` a
    meaningful history index.
    """
    return {
        "git_sha": git_revision(cwd),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "flags": {
            name: os.environ.get(name) for name in _FINGERPRINT_FLAGS
        },
    }
