"""The benchmark registry: every acceptance bar is data, not an assert.

A registered benchmark is one :class:`PerfBenchmark`: a name
(``<suite>.<bench>``), the workload function, its full-size parameters, the
overrides applied under smoke mode, and its acceptance :class:`Bar` list.
The old ``benchmarks/bench_*.py`` scripts each hard-coded their bar as an
inline ``assert speedup >= 10.0`` and threw the measurement away; here the
bar is declarative, ``repro perf gate`` re-checks it against recorded
history, and the pytest wrappers in ``benchmarks/`` reduce to
``run_registered(name) -> assert no failed bars``.

Workload functions have the signature ``func(harness, params) -> metrics``:

* ``harness`` — a :class:`repro.perf.harness.Harness`; record timing series
  through it so the comparator gets real distributions;
* ``params`` — the declared params with smoke overrides merged in;
* ``metrics`` — a flat ``{name: number}`` dict; bars reference these names.

Suites of registered benchmarks live in :mod:`repro.perf.suites`;
:func:`load_suites` imports them all (idempotently) so CLI commands and
tests see one consistent registry.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.perf.harness import Harness, SeriesStats, environment_fingerprint

#: Comparison operators a bar may use (metric vs threshold).
_BAR_OPS = (">=", "<=")


@dataclass(frozen=True)
class Bar:
    """One declarative acceptance bar: ``metric op threshold``.

    ``smoke_threshold`` (optional) relaxes the bar under smoke mode, the
    way the old scripts did with ``5.0 if SMOKE else 10.0`` ternaries.
    """

    metric: str
    op: str
    threshold: float
    smoke_threshold: Optional[float] = None

    def __post_init__(self) -> None:
        if self.op not in _BAR_OPS:
            raise ValueError(f"bar op must be one of {_BAR_OPS}, got {self.op!r}")

    def limit(self, *, smoke: bool = False) -> float:
        """The threshold in force for the given mode."""
        if smoke and self.smoke_threshold is not None:
            return self.smoke_threshold
        return self.threshold

    def passes(self, value: float, *, smoke: bool = False) -> bool:
        limit = self.limit(smoke=smoke)
        return value >= limit if self.op == ">=" else value <= limit

    def describe(self, *, smoke: bool = False) -> str:
        return f"{self.metric} {self.op} {self.limit(smoke=smoke):g}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "metric": self.metric,
            "op": self.op,
            "threshold": self.threshold,
            "smoke_threshold": self.smoke_threshold,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "Bar":
        smoke = payload.get("smoke_threshold")
        return cls(
            metric=str(payload["metric"]),
            op=str(payload["op"]),
            threshold=float(payload["threshold"]),  # type: ignore[arg-type]
            smoke_threshold=float(smoke) if smoke is not None else None,  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class PerfBenchmark:  # repro-lint: disable=R005 (carries a function; CLI listing only)
    """One registered benchmark: identity, workload, params and bars."""

    name: str
    suite: str
    func: Callable[[Harness, Dict[str, object]], Mapping[str, float]]
    description: str = ""
    params: Mapping[str, object] = field(default_factory=dict)
    smoke_params: Mapping[str, object] = field(default_factory=dict)
    bars: Tuple[Bar, ...] = ()
    #: Name of the series regression comparison keys on (seconds, lower is
    #: better); None falls back to the run's total elapsed seconds.
    primary: Optional[str] = None

    def workload_params(self, *, smoke: bool = False) -> Dict[str, object]:
        """Declared params with smoke overrides merged in."""
        merged = dict(self.params)
        if smoke:
            merged.update(self.smoke_params)
        return merged

    def to_dict(self) -> Dict[str, object]:
        """Listing payload (no function reference, so not round-trippable)."""
        return {
            "name": self.name,
            "suite": self.suite,
            "description": self.description,
            "params": dict(self.params),
            "smoke_params": dict(self.smoke_params),
            "bars": [bar.to_dict() for bar in self.bars],
            "primary": self.primary,
        }


#: Registered benchmarks by name.  Mutated only through :func:`register`.
_REGISTRY: Dict[str, PerfBenchmark] = {}
_SUITES_LOADED = False


def register(bench: PerfBenchmark) -> PerfBenchmark:
    """Add one benchmark to the registry; duplicate names are an error."""
    if "." not in bench.name:
        raise ValueError(
            f"benchmark name must be <suite>.<bench>, got {bench.name!r}")
    if not bench.name.startswith(bench.suite + "."):
        raise ValueError(
            f"benchmark {bench.name!r} does not belong to suite {bench.suite!r}")
    if bench.name in _REGISTRY:
        raise ValueError(f"benchmark {bench.name!r} is already registered")
    for bar in bench.bars:
        if not bar.metric:
            raise ValueError(f"benchmark {bench.name!r} has a bar without a metric")
    _REGISTRY[bench.name] = bench
    return bench


def unregister(name: str) -> None:
    """Remove one registration (test hook; suites never unregister)."""
    _REGISTRY.pop(name, None)


def perf_benchmark(
    name: str,
    *,
    suite: Optional[str] = None,
    params: Optional[Mapping[str, object]] = None,
    smoke: Optional[Mapping[str, object]] = None,
    bars: Sequence[Bar] = (),
    primary: Optional[str] = None,
    description: Optional[str] = None,
):
    """Decorator registering a workload function as a benchmark.

    ``suite`` defaults to the name's ``<suite>.`` prefix; ``description``
    defaults to the first line of the function's docstring.
    """

    def decorate(func):
        doc = (func.__doc__ or "").strip().splitlines()
        register(
            PerfBenchmark(
                name=name,
                suite=suite if suite is not None else name.split(".", 1)[0],
                func=func,
                description=description if description is not None
                else (doc[0] if doc else ""),
                params=dict(params or {}),
                smoke_params=dict(smoke or {}),
                bars=tuple(bars),
                primary=primary,
            )
        )
        return func

    return decorate


def load_suites() -> None:
    """Import every bundled suite module (idempotent) to populate the registry."""
    global _SUITES_LOADED
    if _SUITES_LOADED:
        return
    # Import for the registration side effect; the module lists its members.
    from repro.perf import suites  # noqa: F401

    _SUITES_LOADED = True


def get_benchmark(name: str) -> PerfBenchmark:
    load_suites()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "(none)"
        raise KeyError(f"no registered benchmark {name!r}; known: {known}") from None


def all_benchmarks() -> List[PerfBenchmark]:
    """Every registered benchmark, sorted by (suite, name)."""
    load_suites()
    return sorted(_REGISTRY.values(), key=lambda bench: (bench.suite, bench.name))


def suite_names() -> List[str]:
    return sorted({bench.suite for bench in all_benchmarks()})


def select_benchmarks(
    *,
    suites: Sequence[str] = (),
    benches: Sequence[str] = (),
) -> List[PerfBenchmark]:
    """Registry subset by suite and/or bench name (empty filters = all).

    Unknown names raise ``KeyError`` so a typo in ``--bench`` can never
    silently gate nothing.
    """
    selected = all_benchmarks()
    known_suites = set(suite_names())
    for suite in suites:
        if suite not in known_suites:
            raise KeyError(
                f"no registered suite {suite!r}; known: {', '.join(sorted(known_suites))}")
    for name in benches:
        get_benchmark(name)  # raises with the known-name list
    if suites or benches:
        wanted_benches = set(benches)
        wanted_suites = set(suites)
        selected = [
            bench for bench in selected
            if bench.name in wanted_benches or bench.suite in wanted_suites
        ]
    return selected


# --------------------------------------------------------------------- running
@dataclass(frozen=True)
class BarResult:  # repro-lint: disable=R005 (one-way history payload; gate re-reads plain dicts)
    """One bar evaluated against one run's metrics."""

    metric: str
    op: str
    limit: float
    value: Optional[float]
    passed: bool

    def render(self) -> str:
        shown = f"{self.value:g}" if self.value is not None else "missing"
        verdict = "PASS" if self.passed else "FAIL"
        return f"{self.metric} {self.op} {self.limit:g} : {shown}  {verdict}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "metric": self.metric,
            "op": self.op,
            "limit": self.limit,
            "value": self.value,
            "passed": self.passed,
        }


def evaluate_bars(
    bars: Sequence[Bar], metrics: Mapping[str, float], *, smoke: bool = False
) -> List[BarResult]:
    """Check declared bars against a metrics mapping (missing metric = FAIL)."""
    results: List[BarResult] = []
    for bar in bars:
        raw = metrics.get(bar.metric)
        value = float(raw) if isinstance(raw, (int, float)) else None
        passed = value is not None and bar.passes(value, smoke=smoke)
        results.append(
            BarResult(
                metric=bar.metric,
                op=bar.op,
                limit=bar.limit(smoke=smoke),
                value=value,
                passed=passed,
            )
        )
    return results


@dataclass(frozen=True)
class PerfRunResult:
    """One benchmark execution: metrics, series, evaluated bars, context."""

    bench: str
    suite: str
    smoke: bool
    metrics: Dict[str, float]
    series: Dict[str, SeriesStats]
    primary: Optional[str]
    bar_results: Tuple[BarResult, ...]
    elapsed_seconds: float
    env: Dict[str, object]

    @property
    def ok(self) -> bool:
        return all(result.passed for result in self.bar_results)

    @property
    def failed_bars(self) -> List[BarResult]:
        return [result for result in self.bar_results if not result.passed]

    def failure_text(self) -> str:
        """One line per failed bar, for assertion messages."""
        return "; ".join(
            f"{self.bench}: {result.render()}" for result in self.failed_bars
        ) or f"{self.bench}: all bars passed"

    def to_record(self) -> Dict[str, object]:
        """The history-record payload (schema documented in PERF_FORMAT.md).

        ``recorded_at`` is stamped by :meth:`repro.perf.history.PerfHistory
        .append`, not here — run results themselves carry only monotonic
        durations.
        """
        return {
            "bench": self.bench,
            "suite": self.suite,
            "smoke": self.smoke,
            "metrics": dict(self.metrics),
            "series": {
                name: stats.to_dict() for name, stats in self.series.items()
            },
            "primary": self.primary,
            "bars": [result.to_dict() for result in self.bar_results],
            "ok": self.ok,
            "elapsed_seconds": self.elapsed_seconds,
            "env": dict(self.env),
        }


def run_registered(
    name: str,
    *,
    smoke: bool = False,
    env: Optional[Dict[str, object]] = None,
) -> PerfRunResult:
    """Execute one registered benchmark and evaluate its bars.

    ``env`` lets a sweep fingerprint once and share it across benches; by
    default each run fingerprints itself.
    """
    bench = get_benchmark(name)
    harness = Harness(smoke=smoke)
    start = time.perf_counter()
    raw_metrics = bench.func(harness, bench.workload_params(smoke=smoke))
    elapsed = time.perf_counter() - start
    metrics = {
        key: float(value)
        for key, value in (raw_metrics or {}).items()
        if isinstance(value, (int, float))
    }
    return PerfRunResult(
        bench=bench.name,
        suite=bench.suite,
        smoke=smoke,
        metrics=metrics,
        series=dict(harness.series),
        primary=bench.primary,
        bar_results=tuple(evaluate_bars(bench.bars, metrics, smoke=smoke)),
        elapsed_seconds=elapsed,
        env=dict(env) if env is not None else environment_fingerprint(),
    )


def render_run(result: PerfRunResult) -> str:
    """Human-readable one-run report in the house ascii style."""
    mode = "smoke" if result.smoke else "full"
    lines = [f"{result.bench} [{result.suite}] ({mode})"]
    if result.metrics:
        lines.append(
            "  metrics : "
            + "  ".join(f"{key}={value:,.4g}" for key, value in sorted(result.metrics.items()))
        )
    for name, stats in sorted(result.series.items()):
        marker = "*" if name == result.primary else " "
        lines.append(
            f"  series{marker} : {name}: median={stats.median * 1e3:,.3f}ms "
            f"iqr={stats.iqr * 1e3:,.3f}ms min={stats.seconds_min * 1e3:,.3f}ms "
            f"({stats.repeats} repeats)"
        )
    for bar in result.bar_results:
        lines.append(f"  bar     : {bar.render()}")
    lines.append(f"  elapsed : {result.elapsed_seconds:.2f} s")
    return "\n".join(lines)
