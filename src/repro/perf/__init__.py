"""Continuous performance observability (see ``PERF_FORMAT.md``).

``repro.perf`` is the layer above :mod:`repro.trace`: where a trace answers
*where time goes inside one run*, this package records *how performance
moves across commits*.

* :mod:`repro.perf.registry` — the ``@perf_benchmark`` registry every
  ``benchmarks/bench_*.py`` script is built on; acceptance bars are
  declarative :class:`Bar` data, not inline asserts.
* :mod:`repro.perf.harness` — the shared measurement core: warmup, repeats,
  min/median/IQR series on monotonic clocks, plus the environment
  fingerprint (git sha, python, CPU count, ``REPRO_*`` flags).
* :mod:`repro.perf.history` — the append-only JSONL perf store (torn-line
  tolerant via :mod:`repro.jsonutil`) with latest-per-``(bench, sha)``
  indexing and the ``BENCH_<suite>.json`` snapshot emitter.
* :mod:`repro.perf.compare` — noise-aware regression verdicts
  (regressed / improved / noisy / missing) and the registry-driven gate.

CLI: ``repro perf {run,list,history,compare,gate}`` (exit 0 clean,
1 regression/gate failure, 2 error).
"""

from repro.perf.compare import (
    DEFAULT_THRESHOLD,
    IMPROVED,
    MISSING,
    NEW,
    NOISY,
    REGRESSED,
    VERDICTS,
    compare_records,
    evaluate_gate,
    primary_stats,
    render_compare,
    render_gate,
)
from repro.perf.harness import (
    Harness,
    SeriesStats,
    environment_fingerprint,
    git_revision,
    quantile,
    series_stats,
)
from repro.perf.history import (
    PERF_HISTORY_NAME,
    PERF_SCHEMA_VERSION,
    PerfHistory,
    snapshot_payload,
    write_snapshots,
)
from repro.perf.registry import (
    Bar,
    BarResult,
    PerfBenchmark,
    PerfRunResult,
    all_benchmarks,
    evaluate_bars,
    get_benchmark,
    load_suites,
    perf_benchmark,
    register,
    render_run,
    run_registered,
    select_benchmarks,
    suite_names,
    unregister,
)

__all__ = [
    "Bar",
    "BarResult",
    "DEFAULT_THRESHOLD",
    "Harness",
    "IMPROVED",
    "MISSING",
    "NEW",
    "NOISY",
    "PERF_HISTORY_NAME",
    "PERF_SCHEMA_VERSION",
    "PerfBenchmark",
    "PerfHistory",
    "PerfRunResult",
    "REGRESSED",
    "SeriesStats",
    "VERDICTS",
    "all_benchmarks",
    "compare_records",
    "environment_fingerprint",
    "evaluate_bars",
    "evaluate_gate",
    "get_benchmark",
    "git_revision",
    "load_suites",
    "perf_benchmark",
    "primary_stats",
    "quantile",
    "register",
    "render_compare",
    "render_gate",
    "render_run",
    "run_registered",
    "select_benchmarks",
    "series_stats",
    "snapshot_payload",
    "suite_names",
    "unregister",
    "write_snapshots",
]
